package campaign

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"perple/internal/axiom"
	"perple/internal/litmus"
)

// Options tunes one Run invocation — everything here is about *how* the
// campaign executes; *what* it executes lives in the Spec.
type Options struct {
	// CheckpointPath, when non-empty, enables crash recovery: completed
	// job results are snapshotted there, and a pre-existing snapshot for
	// the same spec is restored instead of re-running its jobs.
	CheckpointPath string

	// CheckpointEvery batches snapshot writes to every n completed jobs;
	// 0 means every job.
	CheckpointEvery int

	// CheckpointFS is the filesystem under checkpoint I/O; nil selects
	// the real one. The chaos suite injects fault-ridden implementations
	// here.
	CheckpointFS CheckpointFS

	// WALPath, when non-empty, enables the durable dispatch plane
	// (dispatch mode only): every lease-ledger transition is appended to
	// a write-ahead log there, and a restarted dispatcher replays
	// snapshot + log to reconstruct the exact ledger. Requires
	// CheckpointPath, since the log compacts into the checkpoint.
	WALPath string

	// WALSyncEvery batches WAL fsyncs to every n appended records
	// (group commit); 0 or 1 fsyncs every record.
	WALSyncEvery int

	// CompactEvery folds the WAL into a fresh checkpoint every n
	// terminal job transitions (merges + dead letters); 0 selects the
	// default of 64.
	CompactEvery int

	// Metrics receives the run's counters; nil allocates a private set.
	Metrics *Metrics

	// OnJobDone, when set, observes every merged job result from the
	// collector goroutine (after checkpointing).
	OnJobDone func(*JobResult)

	// OnJobFailed, when set, observes every job whose retry budget ran
	// out — the dead-letter stream the server surfaces on the status
	// endpoint.
	OnJobFailed func(JobFailure)

	// runJob overrides job execution; tests inject failures and panics
	// here. nil selects the real harness-backed runner.
	runJob func(ctx context.Context, job Job, test *litmus.Test, spec Spec) (*JobResult, error)
}

// Campaign is an expanded spec: the resolved corpus plus the
// deterministic job list. One Campaign value supports one Run at a time.
type Campaign struct {
	Spec  Spec
	tests map[string]*litmus.Test
	jobs  []Job
	axiom map[string]TestAxiom // nil when Spec.Axiom is off
}

// TestAxiom is the static classification internal/axiom assigned to one
// corpus test's declared target at campaign construction.
type TestAxiom struct {
	// Class is "sc-allowed", "tso-only", or "forbidden"; empty when the
	// test exceeded the checker's exact-enumeration cutoff (see Note).
	Class         string `json:"class,omitempty"`
	Unsatisfiable bool   `json:"unsatisfiable,omitempty"`
	Vacuous       bool   `json:"vacuous,omitempty"`
	// Note explains why an unclassified test could not be analyzed.
	Note string `json:"note,omitempty"`
	// Excluded marks tests the reject policy dropped from job expansion.
	Excluded bool `json:"excluded,omitempty"`
}

// New validates the spec, resolves its corpus, classifies every test's
// target per the spec's axiom policy, and expands the job list.
func New(spec Spec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tests, err := spec.Corpus()
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*litmus.Test, len(tests))
	for _, t := range tests {
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("campaign: corpus defines test %q twice", t.Name)
		}
		byName[t.Name] = t
	}
	axioms, tests, err := classifyCorpus(spec, tests)
	if err != nil {
		return nil, err
	}
	// Keep the test map in step with the filtered corpus: it also feeds
	// the dispatch-mode wire corpus, and workers should never even see a
	// rejected test.
	for name, ta := range axioms {
		if ta.Excluded {
			delete(byName, name)
		}
	}
	return &Campaign{Spec: spec, tests: byName, jobs: spec.Jobs(tests), axiom: axioms}, nil
}

// classifyCorpus runs the static axiomatic checker over the corpus per
// the spec's axiom policy, returning the per-test classification (nil
// under AxiomOff) and the test list job expansion should use.
func classifyCorpus(spec Spec, tests []*litmus.Test) (map[string]TestAxiom, []*litmus.Test, error) {
	if spec.Axiom == AxiomOff {
		return nil, tests, nil
	}
	info := make(map[string]TestAxiom, len(tests))
	kept := tests
	if spec.Axiom == AxiomReject {
		kept = make([]*litmus.Test, 0, len(tests))
	}
	for _, t := range tests {
		var ta TestAxiom
		rep, err := axiom.Analyze(t)
		switch {
		case err == nil:
			ta.Class = rep.Target.Class.String()
			ta.Unsatisfiable = rep.Target.Unsatisfiable
			ta.Vacuous = rep.Target.Vacuous
		default:
			if _, tooLarge := err.(*axiom.TooLargeError); !tooLarge {
				return nil, nil, fmt.Errorf("campaign: classifying %s: %w", t.Name, err)
			}
			ta.Note = err.Error()
		}
		if spec.Axiom == AxiomReject {
			if ta.Class == axiom.Forbidden.String() || ta.Unsatisfiable {
				ta.Excluded = true
			} else {
				kept = append(kept, t)
			}
		}
		info[t.Name] = ta
	}
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("campaign: axiom policy %q rejected every corpus test", spec.Axiom)
	}
	return info, kept, nil
}

// Jobs returns the campaign's deterministic job list.
func (c *Campaign) Jobs() []Job { return append([]Job(nil), c.jobs...) }

// AxiomInfo returns the per-test static classification recorded at
// construction, keyed by test name; nil when the axiom policy is off.
func (c *Campaign) AxiomInfo() map[string]TestAxiom {
	if c.axiom == nil {
		return nil
	}
	out := make(map[string]TestAxiom, len(c.axiom))
	for name, ta := range c.axiom {
		out[name] = ta
	}
	return out
}

// outcome is what a worker hands the collector: exactly one field set.
type outcome struct {
	jr   *JobResult
	fail *JobFailure
}

// Run executes the campaign: jobs not already restored from the
// checkpoint are fanned out over Spec.Workers goroutines, each job
// retried up to Spec.MaxRetries times with panic recovery, and results
// merge into campaign totals as they land. Cancelling ctx aborts
// in-flight jobs promptly (their partial work is discarded — only whole
// jobs ever reach the totals or the checkpoint, which is what keeps
// resumption total-preserving). Run returns the totals accumulated so
// far together with ctx's error when cancelled.
func (c *Campaign) Run(ctx context.Context, opts Options) (*Results, error) {
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	metrics.Start()
	if opts.runJob == nil {
		opts.runJob = runJob
	}
	if opts.CheckpointFS == nil {
		opts.CheckpointFS = osCheckpointFS{}
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1
	}

	done := map[int]*JobResult{}
	if opts.CheckpointPath != "" {
		restored, recovered, err := LoadCheckpointFS(opts.CheckpointFS, opts.CheckpointPath, c.Spec)
		switch {
		case err == nil:
			done = restored
			if recovered {
				metrics.CheckpointRecoveries.Add(1)
			}
		case os.IsNotExist(err):
			// Fresh campaign: nothing to restore.
		default:
			return nil, err
		}
	}
	if err := c.validateRestored(done); err != nil {
		return nil, err
	}

	results := NewResults()
	restoredIDs := make([]int, 0, len(done))
	for id := range done {
		restoredIDs = append(restoredIDs, id)
	}
	sort.Ints(restoredIDs)
	for _, id := range restoredIDs {
		results.Add(done[id])
	}

	var pending []Job
	for _, job := range c.jobs {
		if _, ok := done[job.ID]; !ok {
			pending = append(pending, job)
		}
	}
	metrics.JobsTotal.Store(int64(len(c.jobs)))
	metrics.JobsRestored.Store(int64(len(done)))
	metrics.QueueDepth.Store(int64(len(pending)))
	if len(pending) == 0 {
		return results, ctx.Err()
	}

	jobCh := make(chan Job)
	outCh := make(chan outcome, c.Spec.Workers)

	go func() {
		defer close(jobCh)
		for _, job := range pending {
			select {
			case jobCh <- job:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < c.Spec.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobCh {
				metrics.QueueDepth.Add(-1)
				if ctx.Err() != nil {
					continue // drain without running
				}
				metrics.InFlight.Add(1)
				jr, fail := c.attemptJob(ctx, job, opts, metrics)
				metrics.InFlight.Add(-1)
				if jr == nil && fail == nil {
					continue // aborted mid-run by cancellation
				}
				outCh <- outcome{jr: jr, fail: fail}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// Collector: the only goroutine touching results, done, and the
	// checkpoint file. Snapshot write failures are transient until the
	// end of the run: the batch stays pending and the next flush retries,
	// because the previous snapshot on disk is still a valid (if stale)
	// resume point — a disk hiccup should cost recent progress, not
	// disable checkpointing for good.
	sinceSave := 0
	for o := range outCh {
		if o.fail != nil {
			results.AddFailure(*o.fail)
			if opts.OnJobFailed != nil {
				opts.OnJobFailed(*o.fail)
			}
			continue
		}
		results.Add(o.jr)
		done[o.jr.JobID] = o.jr
		metrics.JobsCompleted.Add(1)
		sinceSave++
		if opts.CheckpointPath != "" && sinceSave >= every {
			if err := SaveCheckpointFS(opts.CheckpointFS, opts.CheckpointPath, c.Spec, done); err != nil {
				metrics.CheckpointErrors.Add(1)
			} else {
				sinceSave = 0
			}
		}
		if opts.OnJobDone != nil {
			opts.OnJobDone(o.jr)
		}
	}

	if opts.CheckpointPath != "" && sinceSave > 0 {
		if err := saveCheckpointRetry(opts.CheckpointFS, opts.CheckpointPath, c.Spec, done, metrics); err != nil {
			return results, err
		}
	}
	return results, ctx.Err()
}

// finalSaveRetries bounds how many times the closing snapshot write is
// retried before the run surfaces the error.
const finalSaveRetries = 3

// saveCheckpointRetry makes the closing snapshot write resilient to
// transient disk faults: up to finalSaveRetries attempts, counting each
// failure, returning the last error only if none succeeded.
func saveCheckpointRetry(fsys CheckpointFS, path string, spec Spec, done map[int]*JobResult, metrics *Metrics) error {
	return saveCheckpointLedgerRetry(fsys, path, spec, done, nil, metrics)
}

// saveCheckpointLedgerRetry is saveCheckpointRetry carrying a lease
// ledger (the dispatcher's closing save in WAL mode).
func saveCheckpointLedgerRetry(fsys CheckpointFS, path string, spec Spec, done map[int]*JobResult, ledger *LedgerSnapshot, metrics *Metrics) error {
	var err error
	for attempt := 0; attempt < finalSaveRetries; attempt++ {
		if err = SaveCheckpointLedgerFS(fsys, path, spec, done, ledger); err == nil {
			return nil
		}
		metrics.CheckpointErrors.Add(1)
	}
	return err
}

// attemptJob runs one job with panic recovery and the spec's retry
// budget. It returns (nil, nil) when the run was aborted by
// cancellation — an abort is neither a result nor a failure.
func (c *Campaign) attemptJob(ctx context.Context, job Job, opts Options, metrics *Metrics) (*JobResult, *JobFailure) {
	test := c.tests[job.Test]
	var lastErr error
	for attempt := 0; attempt <= c.Spec.MaxRetries; attempt++ {
		if ctx.Err() != nil {
			return nil, nil
		}
		jr, err := runRecovered(ctx, job, test, c.Spec, opts.runJob)
		if err == nil {
			jr.Retries = attempt
			metrics.Iterations.Add(int64(job.N))
			metrics.TracesVerified.Add(jr.TracesVerified)
			metrics.TraceViolations.Add(jr.TraceViolations)
			metrics.TraceVerifyNs.Add(jr.TraceVerifyNs)
			return jr, nil
		}
		if ctx.Err() != nil {
			return nil, nil
		}
		lastErr = err
		if attempt < c.Spec.MaxRetries {
			metrics.Retries.Add(1)
		}
	}
	metrics.JobsFailed.Add(1)
	return nil, &JobFailure{
		JobID:    job.ID,
		Test:     job.Test,
		Tool:     job.Tool,
		Preset:   job.Preset,
		Shard:    job.Shard,
		Attempts: c.Spec.MaxRetries + 1,
		Err:      lastErr.Error(),
	}
}

// runRecovered converts a panicking job into an ordinary error so one
// poisoned shard cannot take down the whole campaign.
func runRecovered(ctx context.Context, job Job, test *litmus.Test, spec Spec,
	run func(context.Context, Job, *litmus.Test, Spec) (*JobResult, error)) (jr *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			jr, err = nil, fmt.Errorf("campaign: job %d (%s/%s/%s shard %d) panicked: %v",
				job.ID, job.Test, job.Tool, job.Preset, job.Shard, r)
		}
	}()
	return run(ctx, job, test, spec)
}

// validateRestored cross-checks checkpointed results against the
// expanded job list; a mismatch means the checkpoint belongs to a
// different job expansion despite the spec check, and resuming would
// corrupt the totals.
func (c *Campaign) validateRestored(done map[int]*JobResult) error {
	for id, jr := range done {
		if id < 0 || id >= len(c.jobs) {
			return fmt.Errorf("campaign: checkpoint references unknown job %d", id)
		}
		job := c.jobs[id]
		if job.Test != jr.Test || job.Tool != jr.Tool || job.Preset != jr.Preset ||
			job.Shard != jr.Shard || job.N != jr.N || job.Seed != jr.Seed {
			return fmt.Errorf("campaign: checkpoint job %d does not match the spec's job expansion", id)
		}
	}
	return nil
}
