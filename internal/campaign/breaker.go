package campaign

import (
	"sync"
	"time"
)

// Circuit-breaker defaults (worker HTTP client).
const (
	DefaultBreakerThreshold = 8
	DefaultBreakerCooldown  = 5 * time.Second
)

// breaker is a consecutive-failure circuit breaker for the worker's
// HTTP client. After threshold consecutive failures the circuit opens
// for cooldown: callers hold off instead of hammering a server that is
// down or overloaded. When the cooldown lapses the circuit is
// half-open — the next attempt is the probe; a probe failure re-opens
// immediately, a success closes the circuit and clears the count.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	failures  int
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// waitTime reports how long the caller must hold off before its next
// attempt; zero means the circuit is closed (or half-open: probing is
// allowed).
func (b *breaker) waitTime(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.Before(b.openUntil) {
		return b.openUntil.Sub(now)
	}
	return 0
}

// success closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

// failure records one failed exchange, opening the circuit at the
// threshold. The count is left one short of the threshold so a failed
// half-open probe re-opens immediately.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
		b.failures = b.threshold - 1
	}
	b.mu.Unlock()
}
