package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regex"` expectation comments from fixture
// files. Each marks that some diagnostic must land on its line with a
// message matching the regex.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantExpect struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses the expectations of every loaded fixture file.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*Package) []wantExpect {
	t.Helper()
	var wants []wantExpect
	seen := map[*ast.File]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if seen[file] {
				continue
			}
			seen[file] = true
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pat, err := unquoteWant(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), m[1], err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pat, err)
						}
						pos := fset.Position(c.Pos())
						wants = append(wants, wantExpect{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// unquoteWant undoes the \" escaping the regex capture allows.
func unquoteWant(s string) (string, error) {
	return strings.ReplaceAll(s, `\"`, `"`), nil
}

// runFixture loads the fixture directory, runs the analyzers scopeless,
// and checks the diagnostics against the `// want` expectations:
// every want must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by a want.
func runFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{dir})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	runner := &Runner{Analyzers: analyzers, NoScope: true}
	diags := runner.Run(loader.Fset, pkgs)
	wants := collectWants(t, loader.Fset, pkgs)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		claimed := false
		for i, w := range wants {
			if !matched[i] && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	if t.Failed() {
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&sb, "  %s\n", d)
		}
		t.Logf("all diagnostics from %s:\n%s", dir, sb.String())
	}
}
