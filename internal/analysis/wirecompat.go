package analysis

import (
	"encoding/json"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// WireShapes is the committed golden file format: one entry per struct
// reachable from the wire/checkpoint roots, with exact field names,
// rendered types, and tags. Regenerate with `perple-vet -update-wire`.
type WireShapes struct {
	// Comment documents provenance inside the JSON file itself.
	Comment string       `json:"comment"`
	Structs []WireStruct `json:"structs"`
}

// WireStruct is the recorded shape of one struct type.
type WireStruct struct {
	Type   string      `json:"type"` // fully-qualified, e.g. perple/internal/campaign.Checkpoint
	Fields []WireField `json:"fields"`
}

// WireField is one struct field's wire-relevant identity.
type WireField struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Tag  string `json:"tag,omitempty"`
}

// WirecompatConfig parameterizes the wirecompat pass.
type WirecompatConfig struct {
	// GoldenPath is the committed shape file.
	GoldenPath string
	// Roots lists "import/path.TypeName" roots; suffix-matched against
	// package paths, so fixture packages can reuse short specs.
	Roots []string
	// Update rewrites GoldenPath from the observed shapes instead of
	// diffing against it.
	Update bool
}

// DefaultWireRoots are the repo's serialization roots: the v2
// checkpoint envelope and snapshot (including the lease-ledger section
// the durable dispatch plane compacts into), every request/response of
// the dispatch protocol (the JSON wire), the WAL record whose PWB1 body
// layout is frozen on disk, and the harness result that owns the upload
// PWB1 body layout. Everything transitively reachable through their
// fields is part of the wire contract.
var DefaultWireRoots = []string{
	"perple/internal/campaign.Checkpoint",
	"perple/internal/campaign.checkpointEnvelope",
	"perple/internal/campaign.walRecord",
	"perple/internal/campaign.CorpusResponse",
	"perple/internal/campaign.LeaseRequest",
	"perple/internal/campaign.LeaseResponse",
	"perple/internal/campaign.HeartbeatRequest",
	"perple/internal/campaign.HeartbeatResponse",
	"perple/internal/campaign.CompleteRequest",
	"perple/internal/campaign.CompleteResponse",
	"perple/internal/harness.Litmus7Result",
}

// NewWirecompat builds the wire-compatibility pass: it snapshots the
// field names, rendered types, and tags of every struct reachable from
// the configured roots and diffs the result against the committed
// golden file. Removing, retyping, or retagging a field — or adding
// one — without regenerating the golden is a finding: the golden file
// in the diff is what turns a silent PWB1/checkpoint break into a
// reviewable wire-contract change.
func NewWirecompat(cfg WirecompatConfig) *Analyzer {
	a := &Analyzer{
		Name: "wirecompat",
		Doc:  "diff wire/checkpoint struct shapes against the committed golden (perple-vet -update-wire regenerates)",
	}
	if len(cfg.Roots) == 0 {
		cfg.Roots = DefaultWireRoots
	}
	w := &wirecompat{cfg: cfg, shapes: map[string]*wireShapeRec{}}
	a.Run = func(pass *Pass) { w.run(pass) }
	a.Finish = func(f *FinishPass) { w.finish(f) }
	return a
}

// wireShapeRec is one observed struct with its declaration position.
type wireShapeRec struct {
	shape WireStruct
	pos   token.Position
	// fieldPos maps field name to its declaration position for
	// field-granular findings.
	fieldPos map[string]token.Position
}

type wirecompat struct {
	cfg      WirecompatConfig
	shapes   map[string]*wireShapeRec
	rootsHit map[string]bool
}

func (w *wirecompat) run(pass *Pass) {
	if pass.Pkg.External {
		return // wire roots live in compile units
	}
	if w.rootsHit == nil {
		w.rootsHit = map[string]bool{}
	}
	for _, root := range w.cfg.Roots {
		dot := strings.LastIndex(root, ".")
		if dot < 0 {
			continue
		}
		pkgSpec, typeName := root[:dot], root[dot+1:]
		if pass.Pkg.Path != pkgSpec && !strings.HasSuffix(pass.Pkg.Path, "/"+pkgSpec) {
			continue
		}
		w.rootsHit[root] = true
		obj := pass.Pkg.Types.Scope().Lookup(typeName)
		if obj == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "wire root %s not found in %s: the golden shape file references a type that no longer exists", root, pass.Pkg.Path)
			continue
		}
		w.collect(pass, obj.Type())
	}
}

// collect walks the type graph from t, recording every module-local
// named struct encountered.
func (w *wirecompat) collect(pass *Pass, t types.Type) {
	switch t := t.(type) {
	case *types.Pointer:
		w.collect(pass, t.Elem())
	case *types.Slice:
		w.collect(pass, t.Elem())
	case *types.Array:
		w.collect(pass, t.Elem())
	case *types.Map:
		w.collect(pass, t.Key())
		w.collect(pass, t.Elem())
	case *types.Chan:
		w.collect(pass, t.Elem())
	case *types.Struct:
		w.collectStruct(pass, "", t, token.Position{})
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return // error, comparable, ...
		}
		key := obj.Pkg().Path() + "." + obj.Name()
		if _, done := w.shapes[key]; done {
			return
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			w.collectStruct(pass, key, u, pass.Fset.Position(obj.Pos()))
		default:
			// Named non-struct (type Hist map[string]int64): its shape is
			// its field-free underlying; still walk element types.
			w.shapes[key] = nil // cycle guard without a record
			w.collect(pass, u)
		}
	}
}

func (w *wirecompat) collectStruct(pass *Pass, key string, st *types.Struct, pos token.Position) {
	var rec *wireShapeRec
	if key != "" {
		rec = &wireShapeRec{shape: WireStruct{Type: key}, pos: pos, fieldPos: map[string]token.Position{}}
		w.shapes[key] = rec
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if rec != nil {
			rec.shape.Fields = append(rec.shape.Fields, WireField{
				Name: f.Name(),
				Type: types.TypeString(f.Type(), nil),
				Tag:  st.Tag(i),
			})
			rec.fieldPos[f.Name()] = pass.Fset.Position(f.Pos())
		}
		w.collect(pass, f.Type())
	}
}

func (w *wirecompat) finish(f *FinishPass) {
	goldenPos := token.Position{Filename: w.cfg.GoldenPath, Line: 1, Column: 1}
	observed := w.observedShapes()

	// When the driver loads only a subtree that contains none of the
	// roots (perple-vet ./internal/sim), there is nothing to compare;
	// diffing the empty observation against the golden would report every
	// recorded struct as removed. Full `./...` runs always hit the roots.
	if len(w.rootsHit) == 0 && !w.cfg.Update {
		return
	}

	if w.cfg.Update {
		if err := WriteWireShapes(w.cfg.GoldenPath, observed); err != nil {
			f.Reportf(goldenPos, "writing golden: %v", err)
		}
		return
	}

	data, err := os.ReadFile(w.cfg.GoldenPath)
	if err != nil {
		f.Reportf(goldenPos, "missing wire shape golden (%v); run `perple-vet -update-wire ./...` and commit the result", err)
		return
	}
	var golden WireShapes
	if err := json.Unmarshal(data, &golden); err != nil {
		f.Reportf(goldenPos, "unreadable wire shape golden: %v", err)
		return
	}

	goldenBy := map[string]WireStruct{}
	for _, s := range golden.Structs {
		goldenBy[s.Type] = s
	}
	seen := map[string]bool{}
	for _, cur := range observed {
		rec := w.shapes[cur.Type]
		seen[cur.Type] = true
		want, ok := goldenBy[cur.Type]
		if !ok {
			f.Reportf(rec.pos, "struct %s is reachable from the wire roots but not recorded in %s; run `perple-vet -update-wire ./...` to record its shape", cur.Type, w.cfg.GoldenPath)
			continue
		}
		w.diffStruct(f, rec, cur, want)
	}
	// Golden-side-only structs are reportable only when every root was
	// seen; on a partial load the unvisited roots legitimately leave
	// their reachable structs unobserved.
	if len(w.rootsHit) != len(w.cfg.Roots) {
		return
	}
	for _, want := range golden.Structs {
		if !seen[want.Type] {
			f.Reportf(goldenPos, "struct %s is recorded in the golden but no longer reachable from the wire roots; if the removal is intentional, run `perple-vet -update-wire ./...`", want.Type)
		}
	}
}

func (w *wirecompat) diffStruct(f *FinishPass, rec *wireShapeRec, cur, want WireStruct) {
	curBy := map[string]WireField{}
	for _, fd := range cur.Fields {
		curBy[fd.Name] = fd
	}
	for _, g := range want.Fields {
		c, ok := curBy[g.Name]
		if !ok {
			f.Reportf(rec.pos, "wire field %s.%s (recorded as %s) was removed; old peers and checkpoints still carry it — bump the shape file with `perple-vet -update-wire ./...` only if the break is intentional", cur.Type, g.Name, g.Type)
			continue
		}
		if c.Type != g.Type {
			f.Reportf(rec.fieldPos[g.Name], "wire field %s.%s retyped %s -> %s without bumping the shape file; run `perple-vet -update-wire ./...` after confirming decode compatibility", cur.Type, g.Name, g.Type, c.Type)
		}
		if c.Tag != g.Tag {
			f.Reportf(rec.fieldPos[g.Name], "wire field %s.%s retagged %q -> %q without bumping the shape file; tags rename JSON keys on the wire", cur.Type, g.Name, g.Tag, c.Tag)
		}
	}
	for _, c := range cur.Fields {
		found := false
		for _, g := range want.Fields {
			if g.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			f.Reportf(rec.fieldPos[c.Name], "new wire field %s.%s (%s) is not recorded in the shape file; run `perple-vet -update-wire ./...`", cur.Type, c.Name, c.Type)
		}
	}
}

// observedShapes returns the collected shapes sorted by type name.
func (w *wirecompat) observedShapes() []WireStruct {
	var out []WireStruct
	for _, rec := range w.shapes {
		if rec != nil {
			out = append(out, rec.shape)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// WriteWireShapes writes the golden file.
func WriteWireShapes(path string, structs []WireStruct) error {
	shapes := WireShapes{
		Comment: "wire/checkpoint struct shapes; generated by `perple-vet -update-wire ./...` — do not edit by hand",
		Structs: structs,
	}
	data, err := json.MarshalIndent(&shapes, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
