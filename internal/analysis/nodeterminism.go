package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewNodeterminism builds the determinism pass: the simulator's core
// promise is that equal seeds produce equal results, so the packages on
// the result path must not read ambient nondeterminism. It flags:
//
//   - calls to time.Now / time.Since / time.Until — wall-clock reads;
//     result-affecting code must count ticks, not nanoseconds;
//   - calls to math/rand's (or math/rand/v2's) package-level functions —
//     the process-wide generator defeats seeded reproducibility; only
//     the seeded-constructor functions are allowed, and methods on an
//     owned *rand.Rand are always fine;
//   - fmt output emitted inside a `range` over a map — Go randomizes map
//     iteration order, so anything printed or formatted per entry must
//     sort the keys first.
//
// This is the successor of the retired scripts/analyzers/nodeterminism
// standalone AST walker. With go/types available, the rand rule now
// distinguishes package-level calls from methods on seeded generators
// exactly, and the map rule recognizes any map-typed range operand
// (including named map types and struct fields the old syntactic
// checker could not see).
func NewNodeterminism() *Analyzer {
	a := &Analyzer{
		Name:  "nodeterminism",
		Doc:   "forbid ambient nondeterminism (wall clocks, global math/rand, map-ordered output) on the result path",
		Scope: []string{"internal/sim", "internal/harness", "internal/core", "internal/litmus"},
	}
	a.Run = func(pass *Pass) { runNodeterminism(pass) }
	return a
}

// randConstructors are the math/rand (and v2) package-level functions
// that build seeded generators rather than consuming the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runNodeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods never touch the ambient sources below
				}
				name := fn.Name()
				switch fn.Pkg().Path() {
				case "time":
					if name == "Now" || name == "Since" || name == "Until" {
						pass.Reportf(n.Pos(), "call to time.%s: wall-clock reads make seeded runs unreproducible; count ticks instead", name)
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[name] {
						pass.Reportf(n.Pos(), "global math/rand source via rand.%s: use rand.New(rand.NewSource(seed)) so equal seeds replay", name)
					}
				}
			case *ast.RangeStmt:
				if !isMapType(info.TypeOf(n.X)) {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
						fn.Pkg().Path() == "fmt" && strings.Contains(fn.Name(), "rint") {
						pass.Reportf(call.Pos(), "fmt.%s inside range over a map: iteration order is randomized; sort the keys first", fn.Name())
					}
					return true
				})
			}
			return true
		})
	}
}

// calleeFunc resolves a call's callee to its function object, or nil
// for conversions, builtins, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
