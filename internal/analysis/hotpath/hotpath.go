// Package hotpath is the runtime half of the hotalloc invariant: the
// static pass (internal/analysis, hotalloc) proves at vet time that
// //perple:hotpath-annotated functions contain no allocation-causing
// constructs; this package proves at test time that exercising those
// functions actually performs zero allocations, via
// testing.AllocsPerRun.
//
// Every annotation names its covering exerciser:
//
//	//perple:hotpath cover=sim-synced-user
//
// and each annotated package carries a hotpath_allocs_test.go that calls
// Verify with a map from cover id to an exerciser func. Verify enforces
// the bijection — an annotation whose cover id has no exerciser fails,
// as does an exerciser whose id matches no annotation — so annotations
// cannot silently drift away from the sweep.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Directive is the annotation marker; kept in sync with
// internal/analysis.HotpathDirective (duplicated to keep this package
// importable from leaf packages without dragging in go/types loading).
const Directive = "//perple:hotpath"

// Annotation is one //perple:hotpath site.
type Annotation struct {
	File  string // path as given to Scan
	Line  int
	Func  string // annotated function name (receiver-qualified for methods)
	Cover string // cover=<id> value, "" if the token is missing
}

// Scan parses every non-test .go file in one package directory (AST
// only, no type checking) and returns its annotations.
func Scan(dir string) ([]Annotation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var anns []Annotation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, Directive)
				if !ok {
					continue
				}
				ann := Annotation{
					File: path,
					Line: fset.Position(c.Pos()).Line,
					Func: funcDisplayName(fn),
				}
				for _, field := range strings.Fields(rest) {
					if v, ok := strings.CutPrefix(field, "cover="); ok {
						ann.Cover = v
					}
				}
				anns = append(anns, ann)
				break
			}
		}
	}
	return anns, nil
}

// ScanTree walks root and returns annotations from every package
// directory, skipping testdata, hidden, and underscore-prefixed dirs.
func ScanTree(root string) ([]Annotation, error) {
	var anns []Annotation
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		dirAnns, err := Scan(path)
		if err != nil {
			return err
		}
		anns = append(anns, dirAnns...)
		return nil
	})
	return anns, err
}

// funcDisplayName renders fn as "Name" or "(Recv).Name".
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	switch t := fn.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString("*" + id.Name)
		}
	case *ast.Ident:
		b.WriteString(t.Name)
	}
	b.WriteString(").")
	b.WriteString(fn.Name.Name)
	return b.String()
}

// allocRuns is how many timed iterations AllocsPerRun performs per
// attempt; attempts is how many times a non-zero measurement is retried
// before failing (the first calls after warmup can still trigger
// one-off growth in interned tables).
const (
	allocRuns = 50
	attempts  = 3
)

// Verify enforces the annotation/exerciser bijection for one package
// directory and asserts every exerciser performs zero allocations per
// run. Each exerciser must internally use warmed, reused state — Verify
// calls it once before measuring so amortized setup (lazy buffers,
// interning) happens outside the measured window.
func Verify(t testing.TB, dir string, exercisers map[string]func()) {
	t.Helper()
	anns, err := Scan(dir)
	if err != nil {
		t.Fatalf("scanning %s: %v", dir, err)
	}
	if len(anns) == 0 {
		t.Fatalf("no %s annotations in %s; delete this sweep test or annotate the hot functions", Directive, dir)
	}

	covered := map[string][]string{} // cover id -> annotated funcs
	for _, ann := range anns {
		if ann.Cover == "" {
			t.Errorf("%s:%d: %s has a bare %s annotation; add cover=<exerciser-id> so the alloc sweep covers it",
				ann.File, ann.Line, ann.Func, Directive)
			continue
		}
		covered[ann.Cover] = append(covered[ann.Cover], ann.Func)
	}
	for id := range covered {
		if _, ok := exercisers[id]; !ok {
			t.Errorf("annotation cover=%s (functions %s) has no exerciser in this sweep",
				id, strings.Join(covered[id], ", "))
		}
	}
	ids := make([]string, 0, len(exercisers))
	for id := range exercisers {
		if _, ok := covered[id]; !ok {
			t.Errorf("exerciser %q matches no %s cover= annotation in %s", id, Directive, dir)
			continue
		}
		ids = append(ids, id)
	}
	if t.Failed() {
		return
	}
	sort.Strings(ids)

	for _, id := range ids {
		fn := exercisers[id]
		fn() // warmup: amortized setup happens here, not in the measured runs
		var allocs float64
		for attempt := 0; attempt < attempts; attempt++ {
			allocs = testing.AllocsPerRun(allocRuns, fn)
			if allocs == 0 {
				break
			}
		}
		if allocs != 0 {
			t.Errorf("exerciser %q (covers %s): %s allocs/op, want 0 — a //perple:hotpath function allocates",
				id, strings.Join(covered[id], ", "), fmt.Sprintf("%.2f", allocs))
		}
	}
}
