// Package scanfix is a parser fixture for hotpath.Scan.
package scanfix

// Hot is annotated with a cover id.
//
//perple:hotpath cover=fix-hot
func Hot() int { return 1 }

type T struct{}

// Method is annotated without a cover id (Scan must still report it so
// Verify can flag the bare annotation).
//
//perple:hotpath
func (t *T) Method() int { return 2 }

// Cold carries no annotation.
func Cold() int { return 3 }
