package hotpath

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestAnnotationsHaveSweeps is the repo-wide drift check: every package
// that contains //perple:hotpath annotations must carry a
// hotpath_allocs_test.go sweep (whose Verify call enforces the
// per-annotation cover bijection), and every annotation must name its
// exerciser via cover=. Without this test, a new annotated package
// would pass vet and tests while its zero-alloc claim goes unmeasured.
func TestAnnotationsHaveSweeps(t *testing.T) {
	root := moduleRoot(t)
	anns, err := ScanTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) == 0 {
		t.Fatalf("no %s annotations anywhere under %s; the hot paths lost their annotations", Directive, root)
	}
	dirs := map[string]bool{}
	for _, ann := range anns {
		dirs[filepath.Dir(ann.File)] = true
		if ann.Cover == "" {
			t.Errorf("%s:%d: %s has a bare %s annotation; add cover=<exerciser-id>", ann.File, ann.Line, ann.Func, Directive)
		}
	}
	for dir := range dirs {
		if _, err := os.Stat(filepath.Join(dir, "hotpath_allocs_test.go")); err != nil {
			t.Errorf("package %s has %s annotations but no hotpath_allocs_test.go sweep", dir, Directive)
		}
	}
}

// TestScanExtractsCover pins Scan's parsing on this package's own
// testdata fixture.
func TestScanExtractsCover(t *testing.T) {
	anns, err := Scan(filepath.Join("testdata", "scanfix"))
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 {
		t.Fatalf("got %d annotations, want 2: %+v", len(anns), anns)
	}
	if anns[0].Func != "Hot" || anns[0].Cover != "fix-hot" {
		t.Errorf("first annotation = %+v, want Hot/fix-hot", anns[0])
	}
	if anns[1].Func != "(*T).Method" || anns[1].Cover != "" {
		t.Errorf("second annotation = %+v, want (*T).Method with empty cover", anns[1])
	}
}
