package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewMergeorder builds the merge order-invariance pass: the repo's
// headline guarantee is that k-worker fleet merges are byte-identical
// to local runs, which dies the moment anything on a Merge/JSON/wire
// path emits map entries in iteration order. Inside every `range` over
// a map the pass flags:
//
//   - calls to ordered sinks — fmt printing, Write*/Put*/Encode*/
//     Marshal*/Append* methods and functions (WireWriter, json
//     encoders, io writers all land in this set);
//   - appends into a slice declared outside the range that are never
//     followed by a sort of that slice later in the same function —
//     the collect-then-sort idiom is recognized and allowed, the
//     collect-and-ship bug is not.
//
// Writes into other maps, counter increments, and sum accumulation are
// order-invariant and pass untouched. The analyzer is deliberately
// per-function: a map range whose unsorted output is sorted by a
// caller needs a //perple:allow mergeorder <reason> stating exactly
// that.
func NewMergeorder() *Analyzer {
	a := &Analyzer{
		Name: "mergeorder",
		Doc:  "forbid map-iteration-ordered output on merge, JSON, and wire paths",
		Scope: []string{
			"internal/harness", "internal/campaign", "internal/core",
			"internal/sim", "internal/stats", "internal/trace",
		},
	}
	a.Run = func(pass *Pass) { runMergeorder(pass) }
	return a
}

// orderedSinkPrefixes match method/function names that emit elements in
// call order.
var orderedSinkPrefixes = []string{"Write", "Put", "Encode", "Marshal", "Append", "Fprint", "Print"}

func runMergeorder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMergeFunc(pass, fn)
		}
	}
}

func checkMergeFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	type pendingAppend struct {
		call   *ast.CallExpr
		target string // rendered target expression, e.g. "cp.Done"
	}
	var pending []pendingAppend

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(info.TypeOf(rng.X)) {
			return true
		}
		declaredInRange := rangeLocalNames(rng)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if name, sink := orderedSinkName(info, m); sink {
					pass.Reportf(m.Pos(), "%s inside range over a map emits in randomized iteration order; sort the keys first", name)
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || i >= len(m.Lhs) || !isBuiltinAppend(info, call) {
						continue
					}
					target := types.ExprString(m.Lhs[i])
					if declaredInRange[rootIdent(m.Lhs[i])] {
						continue // scratch local to the loop body
					}
					pending = append(pending, pendingAppend{call: call, target: target})
				}
			}
			return true
		})
		// Collected appends are fine if the slice is sorted downstream of
		// the append — either after the range completes (collect-then-
		// sort) or immediately after the append inside the loop body
		// (append-then-resort); both leave the final order input-
		// determined.
		for _, pa := range pending {
			if !sortedAfter(fn, info, pa.target, pa.call.End()) {
				pass.Reportf(pa.call.Pos(),
					"append to %s from a map range is never sorted; merge/wire output will depend on map iteration order", pa.target)
			}
		}
		pending = pending[:0]
		return true
	})
}

// rangeLocalNames returns identifiers declared by the range clause
// itself (the key/value variables) — appends into those are loop-local
// scratch, not escaping output.
func rangeLocalNames(rng *ast.RangeStmt) map[string]bool {
	names := map[string]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			names[id.Name] = true
		}
	}
	return names
}

// rootIdent returns the base identifier of an expression chain
// (x in x, x.f, x[i]).
func rootIdent(e ast.Expr) string {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v.Name
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return ""
		}
	}
}

// orderedSinkName reports whether the call is an ordered sink and
// returns a printable name for it.
func orderedSinkName(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	for _, p := range orderedSinkPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Sprint") {
				return "", false // Sprint builds a value; flagged only if it feeds a sink
			}
			qual := fn.Name()
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				qual = types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() }) + "." + fn.Name()
			} else if fn.Pkg() != nil {
				qual = fn.Pkg().Name() + "." + fn.Name()
			}
			return qual, true
		}
	}
	return "", false
}

// isBuiltinAppend recognizes append(...) calls.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether target is passed to a sort.* or slices.*
// function positioned after `after` in the function body. The sorted
// value may be wrapped once (sort.Sort(byID(keys)) still counts as
// sorting keys).
func sortedAfter(fn *ast.FuncDecl, info *types.Info, target string, after token.Pos) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || found {
			return !found
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
				return false
			}
			// One wrapping layer: a conversion or constructor around the
			// target (sort.Sort(byID(keys))).
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && len(inner.Args) == 1 &&
				types.ExprString(inner.Args[0]) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
