// Package wcgood is a positive fixture for the wirecompat pass: the
// test regenerates a golden from these structs and diffs it back,
// which must be clean — including transitive reachability through the
// nested Inner slice.
package wcgood

// Payload is the fixture wire root.
type Payload struct {
	Version int     `json:"version"`
	Items   []Inner `json:"items,omitempty"`
}

// Inner is reachable from Payload and must be recorded too.
type Inner struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}
