// Package wcbad is a negative fixture for the wirecompat pass: the
// committed shapes_stale.json records Payload.A as int64 and a field C
// that no longer exists, and does not know about B — three findings.
// CI runs perple-vet with this golden and asserts exit status 1.
package wcbad

// Payload drifted from the recorded shape.
type Payload struct { // want "was removed"
	A int    `json:"a"` // want "retyped"
	B string `json:"b"` // want "not recorded in the shape file"
}
