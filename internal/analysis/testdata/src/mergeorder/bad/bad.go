// Package mobad is a negative fixture for the mergeorder pass: map
// iteration feeding ordered sinks and unsorted collected slices. CI
// runs perple-vet over this directory and asserts exit status 1.
package mobad

import (
	"fmt"
	"io"
)

type wire struct{}

func (w *wire) PutString(s string) {}

// Dump prints map entries straight to a writer.
func Dump(w io.Writer, m map[string]int64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want "randomized iteration order"
	}
}

// Emit streams map keys into a wire encoder.
func Emit(w *wire, m map[string]int64) {
	for k := range m {
		w.PutString(k) // want "randomized iteration order"
	}
}

// Collect ships map keys without ever sorting them.
func Collect(m map[string]int64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "never sorted"
	}
	return keys
}
