// Package mogood is a positive fixture for the mergeorder pass: the
// repo's order-invariant map idioms, which must produce zero findings.
package mogood

import "sort"

// Sorted is the canonical collect-then-sort idiom.
func Sorted(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Resorted keeps the destination sorted after every append.
func Resorted(dst []string, m map[string]bool) []string {
	for k := range m {
		dst = append(dst, k)
		sort.Strings(dst)
	}
	return dst
}

// Sum accumulates commutatively; iteration order cannot matter.
func Sum(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// Fold writes into another map; maps have no order to corrupt.
func Fold(dst, src map[string]int64) {
	for k, v := range src {
		dst[k] += v
	}
}
