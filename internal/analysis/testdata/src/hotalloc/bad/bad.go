// Package habad is a negative fixture for the hotalloc pass: the
// annotated function below trips every static allocation rule. CI runs
// perple-vet over this directory and asserts exit status 1.
package habad

import "fmt"

type point struct{ x, y int }

func take(v any) { _ = v }

func release(v int64) { _ = v }

// Hot is annotated, so every allocation-causing construct in its body
// is a finding.
//
//perple:hotpath cover=ha-bad
func Hot(vals []int64, name string, raw []byte) string {
	out := ""
	buf := make([]int64, 8) // want "make in hot path"
	_ = buf
	m := map[string]int{"a": 1} // want "map literal"
	_ = m
	s := []int{1, 2} // want "slice literal"
	_ = s
	p := &point{1, 2} // want "escapes to the heap"
	_ = p
	f := func() {} // want "closure literal"
	f()
	_ = string(raw) // want "conversion in hot path"
	var x any
	x = vals[0] // want "boxes the value"
	_ = x
	for _, v := range vals {
		fmt.Println(v)   // want "fmt.Println in hot path"
		take(v)          // want "boxes the value"
		out += name      // want "string concatenation"
		defer release(v) // want "defer inside a hot loop"
	}
	return out
}

// Cold performs the same operations unannotated; no findings.
func Cold(vals []int64) []int64 {
	buf := make([]int64, 0, len(vals))
	return append(buf, vals...)
}
