// Package hagood is a positive fixture for the hotalloc pass: annotated
// functions that index, accumulate, and reuse preallocated state, plus
// a reasoned suppression on a genuinely cold exit.
package hagood

import "fmt"

type ring struct {
	e    []int64
	head int
	n    int
}

// Sum is pure arithmetic over an existing slice.
//
//perple:hotpath cover=ha-good
func Sum(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

// push writes into the preallocated ring without growing it.
//
//perple:hotpath cover=ha-good
func (r *ring) push(v int64) {
	r.e[(r.head+r.n)&(len(r.e)-1)] = v
	r.n++
}

// Step polls a channel and formats only on the cold cancellation exit.
//
//perple:hotpath cover=ha-good
func Step(done chan struct{}, acc *int64) error {
	select {
	case <-done:
		return fmt.Errorf("aborted") //perple:allow hotalloc cold cancellation exit, taken at most once per run
	default:
	}
	*acc++
	return nil
}

// Setup allocates freely; it is not annotated.
func Setup(n int) *ring {
	return &ring{e: make([]int64, n)}
}
