// Package ndgood is a positive fixture for the nodeterminism pass: the
// idioms below are all deterministic (or carry reasoned suppressions)
// and must produce zero findings.
package ndgood

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded owns its generator; methods on a seeded *rand.Rand are always
// fine, and the constructors are exempt from the global-source rule.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Ticks manipulates time values without reading the clock.
func Ticks(d time.Duration) time.Time {
	return time.Unix(0, 0).Add(d)
}

// SortedDump emits map entries in sorted key order.
func SortedDump(m map[string]int, emit func(string, int)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, m[k])
	}
}

// Telemetry reads the wall clock under the unified suppression syntax.
func Telemetry() int64 {
	return time.Now().UnixNano() //perple:allow nodeterminism operator telemetry; never feeds results
}

// LegacyTelemetry uses the retired standalone script's syntax, still
// honored so out-of-tree suppressions keep working.
func LegacyTelemetry() int64 {
	return time.Now().UnixNano() //nodeterminism:allow wall-clock telemetry; never feeds results
}
