// Package ndbad is a negative fixture for the nodeterminism pass: every
// line below marked `want` must produce a finding, proving the pass is
// live. CI additionally runs perple-vet over this directory and asserts
// exit status 1.
package ndbad

import (
	"fmt"
	"math/rand"
	"time"
)

// Stamp reads the wall clock on the result path.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock"
}

// Elapsed measures with the wall clock.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock"
}

// Draw consumes the process-global rand source.
func Draw() int {
	return rand.Intn(6) // want "global math/rand"
}

// Shuffle consumes the global source through a different entry point.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand"
}

// Dump prints map entries in iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "iteration order is randomized"
	}
}
