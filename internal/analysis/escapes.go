package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the optional -escapes mode of the hotalloc pass: it runs
// the real compiler's escape analysis (`go build -gcflags=-m`) on every
// package that contains //perple:hotpath annotations and reports any
// "escapes to heap" / "moved to heap" decision whose position falls
// inside an annotated function's body. The static AST rules in
// hotalloc.go approximate the allocation set; the compiler's verdict is
// exact for heap escapes, at the cost of shelling out to the toolchain —
// which is why it is opt-in rather than part of the default pass.
//
// Findings use the "hotalloc" analyzer name, so the same
// //perple:allow hotalloc <reason> suppressions apply (the driver runs
// suppression filtering over these diagnostics too).

// escapeSpan is one annotated function's body extent.
type escapeSpan struct {
	file      string // as recorded in the FileSet (driver-relative)
	startLine int
	endLine   int
}

// RunEscapeCheck shells out to `go build -gcflags=-m` from moduleRoot
// for each loaded package directory containing //perple:hotpath
// annotations and returns heap-escape diagnostics positioned inside the
// annotated functions. Suppression is NOT applied here; callers route
// the result through the same allowIndex as analyzer findings.
func RunEscapeCheck(fset *token.FileSet, moduleRoot string, pkgs []*Package) ([]Diagnostic, error) {
	spans := map[string][]escapeSpan{} // package dir -> spans
	for _, pkg := range pkgs {
		if pkg.External {
			continue // test-only code is not a hot path
		}
		for _, file := range pkg.Files {
			for _, fn := range hotpathFuncs(file) {
				if fn.Body == nil {
					continue
				}
				start := fset.Position(fn.Body.Pos())
				end := fset.Position(fn.Body.End())
				spans[pkg.Dir] = append(spans[pkg.Dir], escapeSpan{
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
				})
			}
		}
	}
	if len(spans) == 0 {
		return nil, nil
	}

	dirs := make([]string, 0, len(spans))
	for dir := range spans {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var diags []Diagnostic
	for _, dir := range dirs {
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(moduleRoot, abs)
		}
		rel, err := filepath.Rel(moduleRoot, abs)
		if err != nil {
			return nil, fmt.Errorf("escapes: package dir %s outside module root: %v", dir, err)
		}
		cmd := exec.Command("go", "build", "-gcflags=-m", "./"+filepath.ToSlash(rel))
		cmd.Dir = moduleRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("escapes: go build -gcflags=-m ./%s: %v\n%s", rel, err, out)
		}
		diags = append(diags, parseEscapeOutput(out, moduleRoot, spans[dir])...)
	}
	return diags, nil
}

// parseEscapeOutput extracts in-span heap-escape decisions from
// `go build -gcflags=-m` output. Lines look like
//
//	internal/sim/engine.go:142:9: &iteration{...} escapes to heap
//	internal/sim/engine.go:87:6: moved to heap: scratch
//
// with file paths relative to the build working directory.
func parseEscapeOutput(out []byte, moduleRoot string, spans []escapeSpan) []Diagnostic {
	var diags []Diagnostic
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 {
			continue
		}
		lineNo, err1 := strconv.Atoi(parts[1])
		colNo, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		file := filepath.Join(moduleRoot, filepath.FromSlash(parts[0]))
		for _, span := range spans {
			abs := span.file
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(moduleRoot, abs)
			}
			if abs == file && span.startLine <= lineNo && lineNo <= span.endLine {
				diags = append(diags, Diagnostic{
					Analyzer: "hotalloc",
					File:     span.file,
					Line:     lineNo,
					Col:      colNo,
					Message:  "compiler escape analysis: " + strings.TrimSpace(parts[3]) + " inside a //perple:hotpath function",
				})
				break
			}
		}
	}
	return diags
}
