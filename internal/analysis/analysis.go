// Package analysis is the repo's static-analysis framework: a small,
// stdlib-only (go/ast + go/parser + go/types) counterpart to
// golang.org/x/tools/go/analysis, built because the build environment is
// offline and the module carries no dependencies. It provides shared
// package loading with full type information (load.go), position-carrying
// diagnostics, a unified `//perple:allow <analyzer> <reason>` suppression
// syntax, and the four passes that turn the repo's engineering invariants
// into compile gates:
//
//   - nodeterminism: no ambient nondeterminism on the result path
//     (wall clocks, global math/rand, map-ordered output);
//   - hotalloc: functions annotated //perple:hotpath must not contain
//     allocation-causing constructs;
//   - mergeorder: map iteration must not feed ordered sinks (encoders,
//     writers, appended slices) without an intervening sort;
//   - wirecompat: the field shapes of structs reachable from the
//     checkpoint and wire roots must match a committed golden file.
//
// cmd/perple-vet is the driver; exit codes follow perple-lint
// (0 clean, 1 findings, 2 error).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, resolved to a file position. File
// is the path as parsed (driver-relative); JSON field names are part of
// the -json output contract.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one pass over loaded packages.
type Analyzer struct {
	Name string
	Doc  string

	// Scope lists import-path suffixes (e.g. "internal/sim") the
	// analyzer applies to when the driver expands `./...`. nil means
	// every package. The driver's -no-scope flag bypasses it, which is
	// how fixture packages are vetted.
	Scope []string

	// Run analyzes one loaded package unit.
	Run func(*Pass)

	// Finish, when non-nil, runs once after every package unit, for
	// analyzers that accumulate cross-package state (wirecompat).
	Finish func(*FinishPass)
}

// AppliesTo reports whether the analyzer's scope covers the package
// import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if a.Scope == nil {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Pass carries one package unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos. Suppression (`//perple:allow`) is
// applied by the runner, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	pp := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     pp.Filename,
		Line:     pp.Line,
		Col:      pp.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FinishPass is the once-per-run hook context for cross-package
// analyzers.
type FinishPass struct {
	Analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a finding at an explicit position (which may name a
// non-Go file, e.g. a golden shapes file).
func (f *FinishPass) Reportf(pos token.Position, format string, args ...any) {
	f.report(Diagnostic{
		Analyzer: f.Analyzer.Name,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// KnownAnalyzers names every analyzer the suppression syntax accepts;
// an allow comment naming anything else is itself a finding, so typos
// cannot silently disable nothing.
var KnownAnalyzers = []string{"nodeterminism", "hotalloc", "mergeorder", "wirecompat"}

// allowKey identifies a suppression site.
type allowKey struct {
	file string
	line int
}

// allowIndex maps suppression sites to the analyzers they silence.
type allowIndex struct {
	byLine map[allowKey]map[string]bool
	// malformed records allow comments with a missing analyzer name,
	// unknown analyzer, or empty reason; each becomes a diagnostic.
	malformed []Diagnostic
}

const (
	allowPrefix       = "//perple:allow"
	legacyAllowPrefix = "//nodeterminism:allow"
)

// indexAllows scans the comments of every file for suppression
// directives. The unified form is
//
//	//perple:allow <analyzer> <reason>
//
// with a non-empty reason. The legacy form //nodeterminism:allow
// <reason> is still honored as a nodeterminism suppression, so
// out-of-tree users of the retired standalone script keep working.
func indexAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) *allowIndex {
	idx := &allowIndex{byLine: map[allowKey]map[string]bool{}}
	add := func(pos token.Position, analyzer string) {
		k := allowKey{file: pos.Filename, line: pos.Line}
		if idx.byLine[k] == nil {
			idx.byLine[k] = map[string]bool{}
		}
		idx.byLine[k][analyzer] = true
	}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				if rest, ok := strings.CutPrefix(c.Text, legacyAllowPrefix); ok {
					if strings.TrimSpace(rest) == "" {
						idx.malformed = append(idx.malformed, Diagnostic{
							Analyzer: "suppression", File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: "suppression without a reason: write //nodeterminism:allow <reason>",
						})
						continue
					}
					add(pos, "nodeterminism")
					continue
				}
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "suppression", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: "suppression without an analyzer: write //perple:allow <analyzer> <reason>",
					})
				case !known[fields[0]]:
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "suppression", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("suppression names unknown analyzer %q (known: %s)",
							fields[0], strings.Join(KnownAnalyzers, ", ")),
					})
				case len(fields) == 1:
					idx.malformed = append(idx.malformed, Diagnostic{
						Analyzer: "suppression", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("suppression without a reason: write //perple:allow %s <reason>", fields[0]),
					})
				default:
					add(pos, fields[0])
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic is silenced by an allow
// directive on its own line or the line above (doc-comment style).
func (idx *allowIndex) suppressed(d Diagnostic) bool {
	for _, line := range [2]int{d.Line, d.Line - 1} {
		if m := idx.byLine[allowKey{file: d.File, line: line}]; m != nil && m[d.Analyzer] {
			return true
		}
	}
	return false
}

// FilterSuppressed drops diagnostics silenced by //perple:allow
// directives in the loaded files. The Runner applies this to analyzer
// findings itself; the driver routes out-of-band diagnostics (the
// -escapes mode, which positions findings from compiler output rather
// than a Pass) through here so one suppression syntax governs both.
func FilterSuppressed(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, name := range KnownAnalyzers {
		known[name] = true
	}
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		allFiles = append(allFiles, pkg.Files...)
	}
	idx := indexAllows(fset, allFiles, known)
	var out []Diagnostic
	for _, d := range diags {
		if !idx.suppressed(d) {
			out = append(out, d)
		}
	}
	return out
}

// Runner applies a set of analyzers to loaded package units.
type Runner struct {
	Analyzers []*Analyzer
	// NoScope disables per-analyzer package scoping (fixture vetting).
	NoScope bool
}

// Run analyzes the units and returns suppressed-filtered, sorted
// diagnostics. Malformed suppression comments are reported as
// "suppression" diagnostics alongside analyzer findings.
func (r *Runner) Run(fset *token.FileSet, pkgs []*Package) []Diagnostic {
	known := map[string]bool{}
	for _, name := range KnownAnalyzers {
		known[name] = true
	}
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		allFiles = append(allFiles, pkg.Files...)
	}
	idx := indexAllows(fset, allFiles, known)

	var diags []Diagnostic
	sink := func(d Diagnostic) {
		if !idx.suppressed(d) {
			diags = append(diags, d)
		}
	}
	for _, a := range r.Analyzers {
		for _, pkg := range pkgs {
			if !r.NoScope && !a.AppliesTo(pkg.Path) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, report: sink})
		}
		if a.Finish != nil {
			a.Finish(&FinishPass{Analyzer: a, report: sink})
		}
	}
	diags = append(diags, idx.malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Nested inspections (a map range inside a map range) can report the
	// same finding twice; identical diagnostics collapse to one.
	dedup := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			dedup = append(dedup, d)
		}
	}
	return dedup
}
