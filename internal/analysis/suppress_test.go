package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*Package{{Dir: ".", Path: "fix", Files: []*ast.File{file}}}
}

// reportAt is a test analyzer that reports one diagnostic per line
// listed, to exercise suppression without needing type information.
func reportAt(name string, lines ...int) *Analyzer {
	a := &Analyzer{Name: name, Doc: "test"}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			for _, line := range lines {
				pos := pass.Fset.File(file.Pos()).LineStart(line)
				pass.Reportf(pos, "finding on line %d", line)
			}
		}
	}
	return a
}

func TestSuppressionSameAndPreviousLine(t *testing.T) {
	fset, pkgs := parseOne(t, `package fix

func f() {
	_ = 1 //perple:allow nodeterminism reasoned same-line suppression
	//perple:allow nodeterminism reasoned previous-line suppression
	_ = 2
	_ = 3
}
`)
	r := &Runner{Analyzers: []*Analyzer{reportAt("nodeterminism", 4, 6, 7)}}
	diags := r.Run(fset, pkgs)
	if len(diags) != 1 || diags[0].Line != 7 {
		t.Fatalf("want only the line-7 finding to survive, got %v", diags)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	fset, pkgs := parseOne(t, `package fix

func f() {
	_ = 1 //perple:allow nodeterminism reason that names the wrong pass
}
`)
	r := &Runner{Analyzers: []*Analyzer{reportAt("hotalloc", 4)}}
	diags := r.Run(fset, pkgs)
	if len(diags) != 1 || diags[0].Analyzer != "hotalloc" {
		t.Fatalf("an allow for nodeterminism must not silence hotalloc, got %v", diags)
	}
}

func TestLegacyAllowMapsToNodeterminism(t *testing.T) {
	fset, pkgs := parseOne(t, `package fix

func f() {
	_ = 1 //nodeterminism:allow wall-clock telemetry only
}
`)
	r := &Runner{Analyzers: []*Analyzer{reportAt("nodeterminism", 4)}}
	if diags := r.Run(fset, pkgs); len(diags) != 0 {
		t.Fatalf("legacy allow must suppress nodeterminism, got %v", diags)
	}
}

func TestMalformedSuppressionsAreFindings(t *testing.T) {
	fset, pkgs := parseOne(t, `package fix

//perple:allow
func a() {}

//perple:allow nosuchpass spurious reason
func b() {}

//perple:allow hotalloc
func c() {}

//nodeterminism:allow
func d() {}
`)
	r := &Runner{Analyzers: nil}
	diags := r.Run(fset, pkgs)
	if len(diags) != 4 {
		t.Fatalf("want 4 suppression findings, got %d: %v", len(diags), diags)
	}
	wants := []string{"without an analyzer", "unknown analyzer", "without a reason", "without a reason"}
	for i, d := range diags {
		if d.Analyzer != "suppression" || !strings.Contains(d.Message, wants[i]) {
			t.Errorf("diagnostic %d = %v, want suppression finding containing %q", i, d, wants[i])
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "hotalloc", File: "a/b.go", Line: 3, Col: 9, Message: "boom"}
	if got, want := d.String(), "a/b.go:3:9: hotalloc: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
