package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The fixture pairs under testdata/src/<analyzer>/{bad,good} are the
// liveness proof for each pass: bad must produce exactly the `want`-
// marked findings, good must produce none. CI additionally runs the
// perple-vet driver over every bad fixture and asserts exit status 1.

func TestNodeterminismFixtures(t *testing.T) {
	runFixture(t, "testdata/src/nodeterminism/bad", NewNodeterminism())
	runFixture(t, "testdata/src/nodeterminism/good", NewNodeterminism())
}

func TestHotallocFixtures(t *testing.T) {
	runFixture(t, "testdata/src/hotalloc/bad", NewHotalloc())
	runFixture(t, "testdata/src/hotalloc/good", NewHotalloc())
}

func TestMergeorderFixtures(t *testing.T) {
	runFixture(t, "testdata/src/mergeorder/bad", NewMergeorder())
	runFixture(t, "testdata/src/mergeorder/good", NewMergeorder())
}

func TestWirecompatStaleGolden(t *testing.T) {
	runFixture(t, "testdata/src/wirecompat/bad", NewWirecompat(WirecompatConfig{
		GoldenPath: filepath.Join("testdata", "src", "wirecompat", "bad", "shapes_stale.json"),
		Roots:      []string{"perple/internal/analysis/testdata/src/wirecompat/bad.Payload"},
	}))
}

// TestWirecompatRoundTrip regenerates a golden from the good fixture
// and diffs it back: update-then-check must be clean, and the golden
// must record the transitively reachable Inner struct.
func TestWirecompatRoundTrip(t *testing.T) {
	golden := filepath.Join(t.TempDir(), "shapes.json")
	roots := []string{"perple/internal/analysis/testdata/src/wirecompat/good.Payload"}
	dir := "testdata/src/wirecompat/good"

	runFixture(t, dir, NewWirecompat(WirecompatConfig{GoldenPath: golden, Roots: roots, Update: true}))

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("update wrote no golden: %v", err)
	}
	var shapes WireShapes
	if err := json.Unmarshal(data, &shapes); err != nil {
		t.Fatal(err)
	}
	if len(shapes.Structs) != 2 {
		t.Fatalf("golden records %d structs, want 2 (Payload + reachable Inner): %s", len(shapes.Structs), data)
	}

	runFixture(t, dir, NewWirecompat(WirecompatConfig{GoldenPath: golden, Roots: roots}))
}

// TestRepoVetClean is the dogfood gate: the shipped analyzers over the
// repo's own packages must be clean against the committed golden. A
// failure here means a change introduced nondeterminism, a hot-path
// allocation, order-dependent merge output, or an unrecorded wire
// change — exactly what CI's perple-vet step rejects.
func TestRepoVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{filepath.Join(loader.ModuleRoot, "...")})
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Analyzers: []*Analyzer{
		NewNodeterminism(),
		NewHotalloc(),
		NewMergeorder(),
		NewWirecompat(WirecompatConfig{GoldenPath: filepath.Join(loader.ModuleRoot, "testdata", "wire_shapes.json")}),
	}}
	for _, d := range runner.Run(loader.Fset, pkgs) {
		t.Errorf("%s", d)
	}
}
