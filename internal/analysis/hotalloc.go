package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathDirective is the annotation that marks a function as part of a
// zero-allocation hot path:
//
//	//perple:hotpath cover=<exerciser-id>
//
// The optional cover= token names the alloc-sweep exerciser (see
// internal/analysis/hotpath) that proves the annotation at runtime with
// testing.AllocsPerRun; the static pass below proves it at vet time.
const HotpathDirective = "//perple:hotpath"

// NewHotalloc builds the hot-path allocation pass: every function whose
// doc comment carries //perple:hotpath is checked for
// allocation-causing constructs anywhere in its body — hot-path
// functions are per-event/per-iteration code, so "only runs once per
// call" is already too often. Flagged constructs:
//
//   - fmt (and log) calls — formatting allocates;
//   - make, new, and map/slice composite literals — un-hoisted buffers;
//   - &composite{} — heap-escaping pointer construction;
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions;
//   - function literals — closure values allocate; hoist them;
//   - passing or assigning a concrete value where an interface is
//     expected — boxing allocates;
//   - defer inside a loop — each iteration allocates a defer record.
//
// Genuinely cold paths inside annotated functions (a cancellation exit,
// an amortized grow) carry //perple:allow hotalloc <reason>.
//
// The static rules are an approximation in both directions; the
// runtime side (the AllocsPerRun sweep over cover= exercisers, plus
// -escapes mode cross-checking the compiler's own escape analysis)
// closes the gap.
func NewHotalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid allocation-causing constructs in //perple:hotpath-annotated functions",
	}
	a.Run = func(pass *Pass) { runHotalloc(pass) }
	return a
}

// hotpathFuncs returns the FuncDecls of a file that carry the
// //perple:hotpath directive.
func hotpathFuncs(file *ast.File) []*ast.FuncDecl {
	var fns []*ast.FuncDecl
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, HotpathDirective) {
				fns = append(fns, fn)
				break
			}
		}
	}
	return fns
}

func runHotalloc(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range hotpathFuncs(file) {
			if fn.Body != nil {
				checkHotFunc(pass, fn)
			}
		}
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	// loops records the source spans of for/range statements so the
	// defer rule can tell loop bodies apart.
	var loops []ast.Node
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() < pos && pos < l.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.CallExpr:
			checkHotCall(pass, info, n)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path allocates; hoist it to setup")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path allocates; hoist it to setup")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in hot path escapes to the heap; reuse a preallocated value")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				pass.Reportf(n.Pos(), "string concatenation in hot path allocates; use a preallocated []byte")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation in hot path allocates; use a preallocated []byte")
			}
			checkHotAssign(pass, info, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path allocates; hoist it out or pass state explicitly")
			return false // the literal's own body is cold until invoked
		case *ast.DeferStmt:
			if inLoop(n.Pos()) {
				pass.Reportf(n.Pos(), "defer inside a hot loop allocates a defer record per iteration")
			}
		}
		return true
	})
}

// checkHotCall flags allocating builtins, fmt/log formatting, string
// conversions, and interface-boxing arguments.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	// Builtins: make and new allocate by definition.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path allocates; hoist the buffer to setup and reuse it")
			case "new":
				pass.Reportf(call.Pos(), "new in hot path allocates; reuse a preallocated value")
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if argTV, ok := info.Types[call.Args[0]]; ok && argTV.Value == nil {
			to, from := tv.Type.Underlying(), argTV.Type.Underlying()
			if isStringByteConversion(to, from) {
				pass.Reportf(call.Pos(), "string/byte-slice conversion in hot path allocates and copies; keep one representation")
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			pass.Reportf(call.Pos(), "fmt.%s in hot path allocates; hot paths must not format", fn.Name())
			return
		case "log":
			pass.Reportf(call.Pos(), "log.%s in hot path allocates; hot paths must not log", fn.Name())
			return
		}
	}
	// Interface boxing through call arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice, no per-element boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(info, param, arg) {
			pass.Reportf(arg.Pos(), "passing %s as %s boxes the value into an interface, which allocates",
				types.TypeString(info.TypeOf(arg), nil), types.TypeString(param, nil))
		}
	}
}

// checkHotAssign flags assignments that box a concrete value into an
// interface-typed destination.
func checkHotAssign(pass *Pass, info *types.Info, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if boxes(info, info.TypeOf(lhs), n.Rhs[i]) {
			pass.Reportf(n.Rhs[i].Pos(), "assigning %s to %s boxes the value into an interface, which allocates",
				types.TypeString(info.TypeOf(n.Rhs[i]), nil), types.TypeString(info.TypeOf(lhs), nil))
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// converts a concrete value to an interface.
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return !ok || b.Kind() != types.UntypedNil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isNonConstString reports a string + string where the result is not a
// compile-time constant.
func isNonConstString(info *types.Info, n *ast.BinaryExpr) bool {
	tv, ok := info.Types[n]
	return ok && tv.Value == nil && isStringType(tv.Type)
}

// isStringByteConversion recognizes string([]byte), []byte(string),
// string([]rune), and []rune(string) underlying-type pairs.
func isStringByteConversion(to, from types.Type) bool {
	isBytes := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}
