package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked unit: either a package's compile
// unit merged with its in-package test files, or the external _test
// package of a directory. Both units of a directory share Dir and Path
// (External distinguishes them).
type Package struct {
	Dir      string
	Path     string // import path (synthesized from the module root)
	External bool   // the package-name_test unit
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// Loader parses and type-checks module packages with the standard
// library resolved from GOROOT source. The module's own import paths
// are mapped onto directories under the module root; everything else is
// delegated to go/importer's "source" compiler, so loading works in an
// offline, dependency-free build environment. Cgo is disabled for the
// stdlib build context: the pure-Go fallbacks type-check identically
// for analysis purposes and need no C toolchain.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	source  types.ImporterFrom
	imports map[string]*types.Package // import path → non-test typed package
	loading map[string]bool           // import cycle detection
}

// NewLoader builds a loader for the module whose go.mod is at or above
// dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer reads the process-global build context; with
	// cgo off it selects the pure-Go stdlib fallbacks, which type-check
	// identically for analysis purposes and need no C toolchain.
	build.Default.CgoEnabled = false
	l := &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		imports:    map[string]*types.Package{},
		loading:    map[string]bool{},
	}
	l.source = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked from the module tree, everything else from GOROOT
// source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return l.importModule(path)
	}
	return l.source.ImportFrom(path, dir, mode)
}

// importModule type-checks the non-test compile unit of a module
// package, memoized per import path.
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
	files, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.imports[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file of dir into the shared fset, split
// into the compile unit, in-package test files, and external
// (package-name_test) test files.
func (l *Loader) parseDir(dir string) (unit, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysis: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		file, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("analysis: %w", err)
		}
		switch {
		case strings.HasSuffix(file.Name.Name, "_test"):
			extTest = append(extTest, file)
		case strings.HasSuffix(e.Name(), "_test.go"):
			inTest = append(inTest, file)
		default:
			unit = append(unit, file)
		}
	}
	return unit, inTest, extTest, nil
}

// check type-checks one unit against the loader's importer.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// Load expands the pattern arguments (directories, or dir/... walks)
// and returns every analyzed unit. Paths are taken relative to the
// process working directory; testdata, hidden, and Go-file-free
// directories are skipped during walks, matching go tool pattern
// semantics.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(dir string) {
		if clean := filepath.Clean(dir); !seen[clean] {
			seen[clean] = true
			dirs = append(dirs, clean)
		}
	}
	for _, pat := range patterns {
		base, walk := strings.CutSuffix(pat, "...")
		if walk {
			base = strings.TrimSuffix(base, string(filepath.Separator))
			base = strings.TrimSuffix(base, "/")
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			continue
		}
		addDir(pat)
	}

	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir type-checks one directory's units for analysis: the compile
// unit merged with in-package test files, plus the external test
// package when present.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	unit, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(unit)+len(inTest)+len(extTest) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	path := l.importPath(dir)

	var pkgs []*Package
	if len(unit)+len(inTest) > 0 {
		files := append(append([]*ast.File{}, unit...), inTest...)
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{Dir: dir, Path: path, Files: files, Types: pkg, Info: info})
	}
	if len(extTest) > 0 {
		// The external test unit imports the package under test through
		// the normal importer (the memoized non-test unit), so type
		// identity holds for every other package in the import graph.
		// In-package test helpers are not visible to it — external test
		// files that need them would require rebuilding the whole import
		// graph against the test variant, which this loader does not do.
		pkg, info, err := l.check(path+"_test", extTest)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{Dir: dir, Path: path, External: true, Files: extTest, Types: pkg, Info: info})
	}
	return pkgs, nil
}

// importPath synthesizes the import path of a directory from its
// position under the module root.
func (l *Loader) importPath(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}
