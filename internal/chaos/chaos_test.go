package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"perple/internal/campaign"
)

func testPicks() []pick {
	return []pick{{DropRequest, 0.2}, {Delay, 0.2}, {Truncate, 0.1}}
}

func TestScheduleDeterminism(t *testing.T) {
	a := newSchedule(7, 2)
	b := newSchedule(7, 2)
	var diffFromC int
	c := newSchedule(8, 2)
	for i := 0; i < 500; i++ {
		fa := a.next("op", testPicks())
		fb := b.next("op", testPicks())
		if fa != fb {
			t.Fatalf("draw %d: seed-7 schedules disagree: %v vs %v", i, fa, fb)
		}
		if fa != c.next("op", testPicks()) {
			diffFromC++
		}
	}
	if diffFromC == 0 {
		t.Fatal("seed 7 and seed 8 produced identical 500-draw schedules")
	}
}

func TestScheduleConsecutiveCap(t *testing.T) {
	s := newSchedule(1, 2)
	picks := []pick{{DropRequest, 1.0}}
	want := []Fault{DropRequest, DropRequest, None, DropRequest, DropRequest, None}
	for i, w := range want {
		if got := s.next("op", picks); got != w {
			t.Fatalf("draw %d: got %v, want %v", i, got, w)
		}
	}
	// The cap is per op: a different op has its own counter.
	s2 := newSchedule(1, 2)
	s2.next("a", picks)
	s2.next("a", picks)
	if got := s2.next("b", picks); got != DropRequest {
		t.Fatalf("op b first draw: got %v, want %v (cap must not leak across ops)", got, DropRequest)
	}
}

func TestScheduleNonFailingFaultsUncapped(t *testing.T) {
	s := newSchedule(3, 2)
	picks := []pick{{Delay, 1.0}}
	for i := 0; i < 10; i++ {
		if got := s.next("op", picks); got != Delay {
			t.Fatalf("draw %d: got %v, want %v (non-failing faults are never suppressed)", i, got, Delay)
		}
	}
}

const testBody = "hello, campaign"

func newCountingServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, testBody)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func chaosClient(rates Rates, maxConsecutive int) *http.Client {
	return &http.Client{Transport: New(Config{Seed: 1, Rates: rates, MaxConsecutive: maxConsecutive}, nil)}
}

func TestRoundTripperDropRequest(t *testing.T) {
	srv, hits := newCountingServer(t)
	client := chaosClient(Rates{DropRequest: 1}, 1)
	if _, err := client.Get(srv.URL + "/campaigns/c0001/lease"); err == nil {
		t.Fatal("dropped request returned no error")
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server saw %d requests, want 0 (drop_request must fail before delivery)", n)
	}
}

func TestRoundTripperServerError(t *testing.T) {
	srv, hits := newCountingServer(t)
	client := chaosClient(Rates{ServerError: 1}, 1)
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("server saw %d requests, want 0 (server_error is synthesized)", n)
	}
}

func TestRoundTripperDropResponse(t *testing.T) {
	srv, hits := newCountingServer(t)
	client := chaosClient(Rates{DropResponse: 1}, 1)
	if _, err := client.Get(srv.URL + "/x"); err == nil {
		t.Fatal("dropped response returned no error")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (drop_response loses only the reply)", n)
	}
}

func TestRoundTripperDuplicate(t *testing.T) {
	srv, hits := newCountingServer(t)
	client := chaosClient(Rates{Duplicate: 1}, 1)
	resp, err := client.Post(srv.URL+"/x", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != testBody {
		t.Fatalf("caller's exchange damaged: body %q err %v", body, err)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2 (duplicate double-delivers)", n)
	}
}

func TestRoundTripperTruncate(t *testing.T) {
	srv, _ := newCountingServer(t)
	client := chaosClient(Rates{Truncate: 1}, 1)
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := testBody[:len(testBody)/2]; string(body) != want {
		t.Fatalf("truncated body = %q, want %q", body, want)
	}
}

func TestRoundTripperDelay(t *testing.T) {
	srv, hits := newCountingServer(t)
	const floor = 20 * time.Millisecond
	rt := New(Config{Seed: 1, Rates: Rates{Delay: 1}, DelayMin: floor, DelayMax: 2 * floor}, nil)
	client := &http.Client{Transport: rt}
	start := time.Now()
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < floor {
		t.Fatalf("request took %v, want ≥ %v", d, floor)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (delay still delivers)", n)
	}
}

// TestRoundTripperCapGuaranteesProgress is the property the chaos soak
// leans on: a bounded retry loop always outlives the injectors.
func TestRoundTripperCapGuaranteesProgress(t *testing.T) {
	srv, hits := newCountingServer(t)
	client := chaosClient(Rates{DropRequest: 1}, 2)
	var lastErr error
	for i := 0; i < 3; i++ {
		resp, err := client.Get(srv.URL + "/x")
		if err == nil {
			drain(resp)
			lastErr = nil
			break
		}
		lastErr = err
	}
	if lastErr != nil {
		t.Fatalf("3 attempts under cap 2 never succeeded: %v", lastErr)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1", n)
	}
}

func TestRoundTripperStats(t *testing.T) {
	srv, _ := newCountingServer(t)
	client := chaosClient(Rates{ServerError: 1}, 1)
	for i := 0; i < 4; i++ {
		if resp, err := client.Get(srv.URL + "/x"); err == nil {
			drain(resp)
		}
	}
	stats := client.Transport.(*RoundTripper).Stats()
	if stats["ops"] != 4 {
		t.Fatalf("ops = %d, want 4", stats["ops"])
	}
	// Cap 1 alternates fault/clean: 2 of 4 requests get the 503.
	if stats["server_error"] != 2 {
		t.Fatalf("server_error = %d, want 2 (cap 1 alternates)", stats["server_error"])
	}
}

// --- checkpoint filesystem faults ---

func testSpec(t *testing.T) campaign.Spec {
	t.Helper()
	spec := campaign.Spec{Name: "chaos-fs", Tests: []string{"sb"}, Iterations: 10}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func testDone() map[int]*campaign.JobResult {
	return map[int]*campaign.JobResult{
		0: {JobID: 0, Test: "sb", Tool: "perple-heur", Preset: "default", N: 10, Seed: 42, Ticks: 100},
	}
}

func TestFSTornWriteBlocksSaveThenRetrySucceeds(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cp.json"
	spec := testSpec(t)
	fsys := NewFS(FSConfig{Seed: 1, Rates: FSRates{TornWrite: 1}, MaxConsecutive: 2})

	for i := 0; i < 2; i++ {
		err := campaign.SaveCheckpointFS(fsys, path, spec, testDone())
		if err == nil {
			t.Fatalf("save %d succeeded under torn-write rate 1", i)
		}
		if !strings.Contains(err.Error(), "torn write") {
			t.Fatalf("save %d failed with %v, want a torn-write error", i, err)
		}
	}
	if err := campaign.SaveCheckpointFS(fsys, path, spec, testDone()); err != nil {
		t.Fatalf("third save (past the cap) failed: %v", err)
	}
	done, recovered, err := campaign.LoadCheckpointFS(NewFS(FSConfig{}), path, spec)
	if err != nil || recovered {
		t.Fatalf("load: done=%v recovered=%v err=%v", done, recovered, err)
	}
	if len(done) != 1 || done[0] == nil || done[0].Ticks != 100 {
		t.Fatalf("restored snapshot wrong: %+v", done)
	}
}

func TestFSRenameFailBlocksSaveThenRetrySucceeds(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cp.json"
	spec := testSpec(t)
	fsys := NewFS(FSConfig{Seed: 1, Rates: FSRates{RenameFail: 1}, MaxConsecutive: 2})

	for i := 0; i < 2; i++ {
		err := campaign.SaveCheckpointFS(fsys, path, spec, testDone())
		if err == nil {
			t.Fatalf("save %d succeeded under rename-fail rate 1", i)
		}
		if !strings.Contains(err.Error(), "rename") {
			t.Fatalf("save %d failed with %v, want a rename error", i, err)
		}
	}
	if err := campaign.SaveCheckpointFS(fsys, path, spec, testDone()); err != nil {
		t.Fatalf("third save (past the cap) failed: %v", err)
	}
	if _, _, err := campaign.LoadCheckpointFS(NewFS(FSConfig{}), path, spec); err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
}

// TestFSCorruptIsSilentAndCaughtByCRC sweeps seeds: every corrupting
// save must report success (the fault is silent), and across the sweep
// at least one flipped bit must land where the CRC check catches it at
// load. A flip can land in envelope whitespace and change nothing —
// that is fine, and exactly why the assertion is over the sweep.
func TestFSCorruptIsSilentAndCaughtByCRC(t *testing.T) {
	spec := testSpec(t)
	detected := 0
	for seed := int64(1); seed <= 16; seed++ {
		dir := t.TempDir()
		path := dir + "/cp.json"
		fsys := NewFS(FSConfig{Seed: seed, Rates: FSRates{Corrupt: 1}})
		if err := campaign.SaveCheckpointFS(fsys, path, spec, testDone()); err != nil {
			t.Fatalf("seed %d: corrupting save must look successful, got %v", seed, err)
		}
		_, recovered, err := campaign.LoadCheckpointFS(NewFS(FSConfig{}), path, spec)
		if recovered {
			t.Fatalf("seed %d: nothing to recover from on a first save", seed)
		}
		if err != nil {
			if !errors.Is(err, campaign.ErrCheckpointCorrupt) {
				t.Fatalf("seed %d: load failed with %v, want ErrCheckpointCorrupt", seed, err)
			}
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no seed in 1..16 produced a CRC-detected corruption")
	}
}

// TestFSCorruptFallsBackToRotatedSnapshot: a good save, then a silently
// corrupting one; the loader must detect the damage and recover the
// rotated last-good snapshot.
func TestFSCorruptFallsBackToRotatedSnapshot(t *testing.T) {
	spec := testSpec(t)
	for seed := int64(1); seed <= 16; seed++ {
		dir := t.TempDir()
		path := dir + "/cp.json"
		if err := campaign.SaveCheckpointFS(NewFS(FSConfig{}), path, spec, testDone()); err != nil {
			t.Fatal(err)
		}
		newer := testDone()
		newer[1] = &campaign.JobResult{JobID: 1, Test: "sb", Tool: "perple-heur", Preset: "default", N: 10, Seed: 43, Ticks: 200}
		fsys := NewFS(FSConfig{Seed: seed, Rates: FSRates{Corrupt: 1}})
		if err := campaign.SaveCheckpointFS(fsys, path, spec, newer); err != nil {
			t.Fatalf("seed %d: corrupting save must look successful, got %v", seed, err)
		}
		done, recovered, err := campaign.LoadCheckpointFS(NewFS(FSConfig{}), path, spec)
		if err != nil {
			t.Fatalf("seed %d: load with a good rotated snapshot must not fail: %v", seed, err)
		}
		if !recovered {
			// The flip landed somewhere harmless; the newer snapshot loaded.
			if len(done) != 2 {
				t.Fatalf("seed %d: un-recovered load returned %d jobs, want 2", seed, len(done))
			}
			continue
		}
		if len(done) != 1 || done[0] == nil || done[0].Ticks != 100 {
			t.Fatalf("seed %d: recovered snapshot wrong: %+v", seed, done)
		}
		return // saw at least one real recovery; done
	}
	t.Fatal("no seed in 1..16 exercised the fallback path")
}

func TestFSStats(t *testing.T) {
	spec := testSpec(t)
	fsys := NewFS(FSConfig{Seed: 1, Rates: FSRates{TornWrite: 1}, MaxConsecutive: 1})
	path := t.TempDir() + "/cp.json"
	campaign.SaveCheckpointFS(fsys, path, spec, testDone()) // torn
	campaign.SaveCheckpointFS(fsys, path, spec, testDone()) // forced clean
	stats := fsys.Stats()
	if stats["torn_write"] != 1 || stats["ops"] != 2 {
		t.Fatalf("stats = %v, want torn_write=1 ops=2", stats)
	}
}
