// Package chaos is the deterministic fault-injection framework for the
// campaign stack: a seeded, per-endpoint schedule of HTTP transport
// faults (see RoundTripper) and checkpoint filesystem faults (see FS).
//
// Two properties make it a test harness rather than a fuzzer:
//
//   - Reproducibility: every fault decision comes from one seeded PRNG
//     consumed in operation order, so a fixed seed and a serialized
//     operation sequence replay the same fault schedule. (Under
//     concurrency the interleaving — and therefore the schedule — may
//     vary run to run; the properties the chaos suite asserts, such as
//     byte-identical merged results, hold for every interleaving.)
//
//   - Guaranteed progress: at most MaxConsecutive back-to-back failing
//     faults are injected per operation kind, so any retry loop with
//     more than MaxConsecutive attempts is guaranteed to eventually see
//     a clean operation. Chaos runs torture the stack's failure
//     handling without ever being able to wedge it.
package chaos

import (
	"math/rand"
	"sync"
)

// Fault identifies one injector.
type Fault int

const (
	// None injects nothing; the operation proceeds untouched.
	None Fault = iota
	// DropRequest fails the exchange before the server sees it.
	DropRequest
	// DropResponse delivers the request, lets the server act, then loses
	// the response — the fault that exposes non-idempotent handlers.
	DropResponse
	// Delay stalls the request, then lets it proceed.
	Delay
	// Duplicate delivers the request twice; the second delivery's
	// response is discarded.
	Duplicate
	// Truncate cuts the response body short mid-stream.
	Truncate
	// ServerError synthesizes a 503 without contacting the server.
	ServerError
	// TornWrite persists only a prefix of a checkpoint write, then fails
	// the fsync.
	TornWrite
	// Corrupt silently flips one bit in a checkpoint write — the fault
	// only a checksum can catch.
	Corrupt
	// RenameFail fails the checkpoint's commit (or rotation) rename.
	RenameFail
	// PartialAppend persists only a prefix of a WAL append, then fails
	// the write — the crash-mid-append case that leaves a torn tail
	// record for replay to detect and truncate.
	PartialAppend

	numFaults
)

var faultNames = [numFaults]string{
	"none", "drop_request", "drop_response", "delay", "duplicate",
	"truncate", "server_error", "torn_write", "corrupt", "rename_fail",
	"partial_append",
}

func (f Fault) String() string {
	if f < 0 || f >= numFaults {
		return "unknown"
	}
	return faultNames[f]
}

// failing reports whether the fault makes the operation observably fail
// and therefore counts toward the consecutive-fault cap. Delay,
// Duplicate, and Corrupt leave the operation nominally successful.
func (f Fault) failing() bool {
	switch f {
	case None, Delay, Duplicate, Corrupt:
		return false
	}
	return true
}

// Stats is a snapshot of injector activity: how many times each fault
// fired, keyed by Fault.String(), plus "ops" for total operations seen.
type Stats map[string]int64

// Merge folds another snapshot into s (for aggregating across the
// injectors of a whole fleet).
func (s Stats) Merge(o Stats) {
	for k, v := range o {
		s[k] += v
	}
}

// pick is one entry of an operation's fault-rate table.
type pick struct {
	fault Fault
	rate  float64
}

// schedule is the shared seeded core: a single PRNG consumed in
// operation order, per-op consecutive-failure caps, and fault counters.
type schedule struct {
	mu          sync.Mutex
	rng         *rand.Rand
	max         int
	consecutive map[string]int
	counts      [numFaults]int64
	ops         int64
}

func newSchedule(seed int64, maxConsecutive int) *schedule {
	if maxConsecutive <= 0 {
		maxConsecutive = 2
	}
	return &schedule{
		rng:         rand.New(rand.NewSource(seed)),
		max:         maxConsecutive,
		consecutive: map[string]int{},
	}
}

// next draws the fault for one operation against op's rate table. The
// rates are treated as disjoint outcome probabilities (their sum must
// stay ≤ 1); a single uniform draw selects among them. A failing fault
// is suppressed to None once op has already suffered max consecutive
// failing faults, which is what guarantees bounded retry loops succeed.
func (s *schedule) next(op string, picks []pick) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	u := s.rng.Float64()
	f := None
	for _, p := range picks {
		if u < p.rate {
			f = p.fault
			break
		}
		u -= p.rate
	}
	if f.failing() {
		if s.consecutive[op] >= s.max {
			f = None
		} else {
			s.consecutive[op]++
		}
	}
	if !f.failing() {
		s.consecutive[op] = 0
	}
	s.counts[f]++
	return f
}

// intn is a deterministic auxiliary draw (delay durations, corruption
// positions) from the same seeded stream.
func (s *schedule) intn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Intn(n)
}

// stats snapshots the counters.
func (s *schedule) stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{"ops": s.ops}
	for f := Fault(1); f < numFaults; f++ {
		out[f.String()] = s.counts[f]
	}
	return out
}
