package chaos

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"perple/internal/campaign"
)

// FSRates are the per-save-attempt fault probabilities for the
// checkpoint filesystem. One seeded draw per save attempt (made when
// the temp file is created) selects at most one of them, so the sum
// must stay ≤ 1.
type FSRates struct {
	// TornWrite persists only the first half of the snapshot, then fails
	// the fsync — the crash-mid-write case.
	TornWrite float64
	// Corrupt flips a single bit in the written snapshot and reports
	// success — silent media corruption, detectable only by checksum.
	Corrupt float64
	// RenameFail fails the save's next rename (rotation or commit).
	RenameFail float64
	// PartialAppend persists only a prefix of one WAL append and fails
	// the write — the crash that leaves a torn record at the log's tail.
	PartialAppend float64
}

// FSConfig parameterizes an FS.
type FSConfig struct {
	// Seed drives the fault schedule; equal seeds replay equal draws.
	Seed  int64
	Rates FSRates
	// MaxConsecutive caps back-to-back failing save attempts (default
	// 2). Corrupt does not count — it is a silent success — so a save
	// loop with more attempts than the cap always completes.
	MaxConsecutive int
}

// fsOp is the save-path schedule key: a save attempt draws exactly one
// fault covering its whole write-sync-rename sequence, so the
// consecutive-failure cap bounds failing save attempts as a unit.
// fsAppendOp keys the WAL append path separately — append faults must
// not eat the save path's consecutive-failure budget or vice versa.
const (
	fsOp       = "save"
	fsAppendOp = "append"
)

// FS implements campaign.CheckpointFS with seeded write-path faults.
// Reads are never faulted: corruption is injected at write time, which
// is where real torn sectors and bit rot originate, and which is what
// exercises the load-time checksum and last-good fallback.
//
// Fault bookkeeping assumes save attempts do not interleave (the
// campaign layer serializes checkpoint writes); concurrent reads are
// fine.
type FS struct {
	sched *schedule
	rates FSRates

	mu            sync.Mutex
	pendingRename bool
}

// NewFS builds a fault-injecting checkpoint filesystem.
func NewFS(cfg FSConfig) *FS {
	return &FS{sched: newSchedule(cfg.Seed, cfg.MaxConsecutive), rates: cfg.Rates}
}

// Stats snapshots how often each injector has fired.
func (f *FS) Stats() Stats { return f.sched.stats() }

// CreateTemp opens the save attempt: it draws the attempt's fault and
// returns a buffering file that applies any write-path fault at Sync.
func (f *FS) CreateTemp(dir, pattern string) (campaign.CheckpointFile, error) {
	fault := f.sched.next(fsOp, []pick{
		{TornWrite, f.rates.TornWrite},
		{Corrupt, f.rates.Corrupt},
		{RenameFail, f.rates.RenameFail},
	})
	if fault == RenameFail {
		f.mu.Lock()
		f.pendingRename = true
		f.mu.Unlock()
		fault = None
	}
	file, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: file, fault: fault, intn: f.sched.intn}, nil
}

// Rename consumes a pending rename fault, else delegates to os.Rename.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.pendingRename
	f.pendingRename = false
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("chaos: rename %s -> %s failed", oldpath, newpath)
	}
	return os.Rename(oldpath, newpath)
}

// Remove delegates to os.Remove (cleanup is never faulted).
func (f *FS) Remove(name string) error { return os.Remove(name) }

// ReadFile delegates to os.ReadFile (reads are never faulted).
func (f *FS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// SyncDir is a no-op: directory syncs are best-effort in the real
// implementation too, and faulting them would add no new failure mode
// beyond RenameFail.
func (f *FS) SyncDir(dir string) error { return nil }

// OpenAppend opens a WAL segment for appending. Each Write draws its
// own fault, so a long-lived log file sees torn appends sprinkled
// through its life rather than one draw at open time.
func (f *FS) OpenAppend(name string) (campaign.WALFile, error) {
	file, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &appendFile{f: file, fs: f}, nil
}

// appendFile is a WAL segment handle whose writes can tear. Unlike
// faultFile it does not buffer: each append is one frame, and a
// PartialAppend persists a strict prefix of that frame and reports
// failure — exactly the bytes a real crash mid-append would leave.
type appendFile struct {
	f  *os.File
	fs *FS
}

func (w *appendFile) Write(p []byte) (int, error) {
	fault := w.fs.sched.next(fsAppendOp, []pick{
		{PartialAppend, w.fs.rates.PartialAppend},
	})
	if fault == PartialAppend && len(p) > 0 {
		cut := w.fs.sched.intn(len(p))
		n, err := w.f.Write(p[:cut])
		if err != nil {
			return n, err
		}
		w.f.Sync()
		return n, fmt.Errorf("chaos: partial append: %d of %d bytes persisted", cut, len(p))
	}
	return w.f.Write(p)
}

func (w *appendFile) Sync() error  { return w.f.Sync() }
func (w *appendFile) Close() error { return w.f.Close() }

// faultFile buffers all writes and applies its fault when the caller
// syncs, mimicking a kernel that only surfaces write-back problems at
// fsync time.
type faultFile struct {
	f     *os.File
	buf   bytes.Buffer
	fault Fault
	intn  func(n int) int
}

func (w *faultFile) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *faultFile) Name() string { return w.f.Name() }

func (w *faultFile) Sync() error {
	data := w.buf.Bytes()
	switch w.fault {
	case TornWrite:
		// Half the bytes reach the file, then the fsync reports failure.
		if _, err := w.f.Write(data[:len(data)/2]); err != nil {
			return err
		}
		w.f.Sync()
		return fmt.Errorf("chaos: torn write: fsync failed after %d of %d bytes", len(data)/2, len(data))
	case Corrupt:
		if len(data) > 0 {
			data = append([]byte(nil), data...)
			data[w.intn(len(data))] ^= 1 << uint(w.intn(8))
		}
	}
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }
