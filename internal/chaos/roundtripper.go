package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Rates are the per-request fault probabilities for one endpoint. At
// most one fault fires per request — a single seeded draw selects among
// them — so the sum must stay ≤ 1.
type Rates struct {
	DropRequest  float64
	DropResponse float64
	Delay        float64
	Duplicate    float64
	Truncate     float64
	ServerError  float64
}

// Config parameterizes a RoundTripper.
type Config struct {
	// Seed drives the fault schedule; equal seeds replay equal draws.
	Seed int64
	// Rates applies to every request unless PerOp overrides the
	// request's op (the last segment of the URL path, e.g. "lease").
	Rates Rates
	// PerOp overrides Rates for specific ops.
	PerOp map[string]Rates
	// DelayMin and DelayMax bound injected delays (defaults 1ms–10ms).
	DelayMin time.Duration
	DelayMax time.Duration
	// MaxConsecutive caps back-to-back failing faults per op (default
	// 2), so any retry loop with more attempts than the cap is
	// guaranteed a clean exchange.
	MaxConsecutive int
}

// RoundTripper wraps another http.RoundTripper with seeded fault
// injection. It is safe for concurrent use.
type RoundTripper struct {
	base  http.RoundTripper
	cfg   Config
	sched *schedule
}

// New builds a fault-injecting RoundTripper over base (defaulting to
// http.DefaultTransport).
func New(cfg Config, base http.RoundTripper) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.DelayMin <= 0 {
		cfg.DelayMin = time.Millisecond
	}
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = 10 * time.Millisecond
		if cfg.DelayMax < cfg.DelayMin {
			cfg.DelayMax = cfg.DelayMin
		}
	}
	return &RoundTripper{base: base, cfg: cfg, sched: newSchedule(cfg.Seed, cfg.MaxConsecutive)}
}

// Stats snapshots how often each injector has fired.
func (rt *RoundTripper) Stats() Stats { return rt.sched.stats() }

// opOf keys the fault schedule by the last URL path segment, which in
// the dispatch protocol names the operation (corpus, lease, heartbeat,
// complete).
func opOf(req *http.Request) string {
	p := strings.TrimSuffix(req.URL.Path, "/")
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		p = p[i+1:]
	}
	if p == "" {
		p = "/"
	}
	return p
}

func (rt *RoundTripper) picks(op string) []pick {
	r := rt.cfg.Rates
	if o, ok := rt.cfg.PerOp[op]; ok {
		r = o
	}
	return []pick{
		{DropRequest, r.DropRequest},
		{DropResponse, r.DropResponse},
		{Delay, r.Delay},
		{Duplicate, r.Duplicate},
		{Truncate, r.Truncate},
		{ServerError, r.ServerError},
	}
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	op := opOf(req)
	switch rt.sched.next(op, rt.picks(op)) {
	case DropRequest:
		closeBody(req)
		return nil, fmt.Errorf("chaos: %s %s: request dropped", req.Method, req.URL.Path)

	case ServerError:
		closeBody(req)
		return syntheticError(req), nil

	case Delay:
		span := int64(rt.cfg.DelayMax-rt.cfg.DelayMin) + 1
		d := rt.cfg.DelayMin + time.Duration(rt.sched.intn(int(span)))
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		}
		return rt.base.RoundTrip(req)

	case DropResponse:
		// The server sees and acts on the request; only the response is
		// lost. The caller observes a transport error and will retry, so
		// any non-idempotent handler double-applies.
		resp, err := rt.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		drain(resp)
		return nil, fmt.Errorf("chaos: %s %s: response dropped after delivery", req.Method, req.URL.Path)

	case Duplicate:
		// Deliver a cloned copy first, discard its response, then run the
		// caller's exchange normally — the wire-level double-send.
		if dup, ok := cloneRequest(req); ok {
			if resp, err := rt.base.RoundTrip(dup); err == nil {
				drain(resp)
			}
		}
		return rt.base.RoundTrip(req)

	case Truncate:
		resp, err := rt.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := body[:len(body)/2]
		resp.Body = io.NopCloser(bytes.NewReader(cut))
		resp.ContentLength = int64(len(cut))
		resp.Header.Set("Content-Length", strconv.Itoa(len(cut)))
		return resp, nil
	}
	return rt.base.RoundTrip(req)
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// cloneRequest copies req with a replayable body. Requests whose body
// cannot be replayed (no GetBody) are not duplicated.
func cloneRequest(req *http.Request) (*http.Request, bool) {
	dup := req.Clone(req.Context())
	if req.Body == nil {
		return dup, true
	}
	if req.GetBody == nil {
		return nil, false
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, false
	}
	dup.Body = body
	return dup, true
}

func syntheticError(req *http.Request) *http.Response {
	body := "chaos: injected server error\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": {"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
