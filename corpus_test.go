package perple

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusFilesRoundTrip parses every shipped .litmus file and checks
// it against its in-code counterpart: the files under testdata/suite are
// the on-disk form of the built-in corpus (Table II plus the
// non-convertible examples), usable with perple-suite -dir.
func TestCorpusFilesRoundTrip(t *testing.T) {
	dir := filepath.Join("testdata", "suite")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Test{}
	for _, e := range Suite() {
		byName[e.Test.Name] = e.Test
	}
	for _, nc := range NonConvertible() {
		byName[nc.Name] = nc
	}

	parsed := 0
	for _, entry := range entries {
		if !strings.HasSuffix(entry.Name(), ".litmus") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, entry.Name()))
		if err != nil {
			t.Fatal(err)
		}
		test, err := ParseLitmus(string(src))
		if err != nil {
			t.Errorf("%s: %v", entry.Name(), err)
			continue
		}
		parsed++
		want, ok := byName[test.Name]
		if !ok {
			t.Errorf("%s: parsed test %q has no in-code counterpart", entry.Name(), test.Name)
			continue
		}
		if test.T() != want.T() || test.TL() != want.TL() {
			t.Errorf("%s: [T,TL]=[%d,%d], want [%d,%d]",
				test.Name, test.T(), test.TL(), want.T(), want.TL())
		}
		for ti := range want.Threads {
			for ii, in := range want.Threads[ti].Instrs {
				if test.Threads[ti].Instrs[ii] != in {
					t.Errorf("%s thread %d instr %d: %v, want %v",
						test.Name, ti, ii, test.Threads[ti].Instrs[ii], in)
				}
			}
		}
		if !test.Target.Equal(want.Target) {
			t.Errorf("%s: target %v, want %v", test.Name, test.Target, want.Target)
		}
	}
	if want := len(byName); parsed != want {
		t.Errorf("parsed %d corpus files, want %d", parsed, want)
	}
}
