package perple

import (
	"context"
	"fmt"
	"io"
	"testing"

	"perple/internal/experiments"
	"perple/internal/harness"
	"perple/internal/sim"
)

// Benchmarks regenerating the paper's evaluation: one per table/figure
// (BenchmarkTableII .. BenchmarkOverall run the full drivers at reduced
// iteration counts), plus wall-clock micro-benchmarks of the genuinely
// algorithmic claims (BenchmarkCount*: Algorithm 1 is N^TL, Algorithm 2
// is linear) and ablation benchmarks for the design choices DESIGN.md
// calls out. Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-scale paper numbers come from cmd/perple-experiments instead.

// ----- per-table/figure drivers -----

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(io.Discard, experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	opts := experiments.Options{N: 500, ExhaustiveCap3: 150}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	opts := experiments.Options{N: 500, ExhaustiveCap3: 150}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	opts := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	opts := experiments.Options{N: 20000}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(io.Discard, experiments.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicAccuracy(b *testing.B) {
	opts := experiments.Options{N: 800, ExhaustiveCap3: 150}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeuristicAccuracy(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverall(b *testing.B) {
	opts := experiments.Options{N: 800}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Overall(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- algorithmic micro-benchmarks (wall clock) -----

// benchRun produces one perpetual run's buffers for counter benchmarks.
func benchRun(b *testing.B, name string, n int) (*PerpetualTest, *Counter, *BufSet) {
	b.Helper()
	test, err := SuiteTest(name)
	if err != nil {
		b.Fatal(err)
	}
	pt, err := Convert(test)
	if err != nil {
		b.Fatal(err)
	}
	counter, err := NewTargetCounter(pt)
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunPerpLE(pt, counter, n, PerpLEOptions{Heuristic: true, KeepBufs: true}, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return pt, counter, res.Bufs
}

// BenchmarkCountExhaustive measures Algorithm 1's N^TL frame walk; the
// per-op time must grow quadratically with N for the TL=2 sb test.
func BenchmarkCountExhaustive(b *testing.B) {
	for _, n := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("sb/n=%d", n), func(b *testing.B) {
			_, counter, bufs := benchRun(b, "sb", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := counter.CountExhaustive(bufs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountHeuristic measures Algorithm 2's linear walk at the same
// sizes; comparing against BenchmarkCountExhaustive reproduces the
// paper's heuristic-vs-exhaustive speedup in host wall clock.
func BenchmarkCountHeuristic(b *testing.B) {
	for _, n := range []int{250, 500, 1000, 2000, 100000} {
		b.Run(fmt.Sprintf("sb/n=%d", n), func(b *testing.B) {
			_, counter, bufs := benchRun(b, "sb", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := counter.CountHeuristic(bufs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountExhaustiveParallel measures the fan-out engineering
// extension: the same N^2 frame walk split over worker goroutines.
func BenchmarkCountExhaustiveParallel(b *testing.B) {
	_, counter, bufs := benchRun(b, "sb", 2000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := counter.CountExhaustiveParallel(context.Background(), bufs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountExhaustiveTL3 shows the cubic blowup for a T_L=3 test
// (podwr001), the paper's Section VII-B impracticality observation.
func BenchmarkCountExhaustiveTL3(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("podwr001/n=%d", n), func(b *testing.B) {
			_, counter, bufs := benchRun(b, "podwr001", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := counter.CountExhaustive(bufs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountFactorized measures the factorized exact counter on the
// same workloads as the odometer benchmarks above: sb (TL=2, pairwise
// matrix) and podwr001 (TL=3, triangle loop). The differential tests in
// internal/core prove the tallies identical; this shows the N^TL frame
// walk collapsing to bitset work.
func BenchmarkCountFactorized(b *testing.B) {
	bench := func(name string, sizes []int) {
		for _, n := range sizes {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				_, counter, bufs := benchRun(b, name, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, ok, err := counter.CountFactorized(bufs)
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						b.Fatalf("%s fell back to the odometer", name)
					}
					_ = res
				}
			})
		}
	}
	bench("sb", []int{2000})
	bench("podwr001", []int{100, 200, 400})
}

// BenchmarkConvert measures the Converter itself (test + full outcome
// space), which the paper amortizes across runs.
func BenchmarkConvert(b *testing.B) {
	for _, name := range []string{"sb", "iriw", "podwr001", "rfi017"} {
		b.Run(name, func(b *testing.B) {
			test, err := SuiteTest(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pt, err := Convert(test)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ConvertAllOutcomes(pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimPerpetual measures simulated-machine throughput for
// perpetual execution (iterations simulated per benchmark op).
func BenchmarkSimPerpetual(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	pt, err := Convert(test)
	if err != nil {
		b.Fatal(err)
	}
	counter, err := NewTargetCounter(pt)
	if err != nil {
		b.Fatal(err)
	}
	const n = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPerpLE(pt, counter, n, PerpLEOptions{Heuristic: true}, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimLitmus7 measures litmus7-style simulation per mode.
func BenchmarkSimLitmus7(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []Mode{ModeUser, ModeTimebase, ModeNone} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunLitmus7(test, 5000, mode, nil, DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimLitmus7Reused measures the zero-allocation steady state: a
// compiled test rerun on a reusable Litmus7Runner. The gap to
// BenchmarkSimLitmus7 is the per-run setup cost (compile, machine and
// histogram allocation) the runner amortizes away; allocs/op here is the
// hot-path allocation count and must stay ~0.
func BenchmarkSimLitmus7Reused(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	ct, err := CompileTest(test)
	if err != nil {
		b.Fatal(err)
	}
	lr, err := NewLitmus7Runner(ct, nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := lr.Run(5000, ModeUser, DefaultConfig()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lr.Run(5000, ModeUser, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceVerify prices the witness-trace verification plane on
// the reused zero-allocation runner. The "off" variant must match
// BenchmarkSimLitmus7Reused — with verification disabled the recording
// hooks reduce to a nil check and the 4M+ iters/s hot path is untouched
// — while the strided and full variants measure rf/co recording plus the
// near-linear consistency check per verified witness.
func BenchmarkTraceVerify(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	ct, err := CompileTest(test)
	if err != nil {
		b.Fatal(err)
	}
	const n = 5000
	for _, bc := range []struct {
		name string
		tv   harness.TraceVerify
	}{
		{"off", harness.TraceVerify{}},
		{"every=16", harness.TraceVerify{Every: 16}},
		{"all", harness.TraceVerify{Every: 1}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			lr, err := NewLitmus7Runner(ct, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := lr.SetTraceVerify(bc.tv); err != nil {
				b.Fatal(err)
			}
			if _, err := lr.Run(n, ModeUser, DefaultConfig()); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lr.Run(n, ModeUser, DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "iters/sec")
		})
	}
}

// BenchmarkSimLitmus7Batch measures intra-test batching: one 5000-
// iteration litmus7-style run split across per-worker machines. On a
// multicore host the per-op time drops near-linearly with workers; on a
// single-core host it stays flat (the work is the same, only interleaved)
// — the iters/sec metric makes the comparison explicit either way.
func BenchmarkSimLitmus7Batch(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	const n = 5000
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunLitmus7Batch(test, n, ModeUser, nil, DefaultConfig(), workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "iters/sec")
		})
	}
}

// BenchmarkSimLitmus7PSO measures the PSO (buggy-machine) drain path:
// unlike TSO's O(1) FIFO front, PSO drains the per-buffer minimum
// drainAt, and applyDrains probes every thread's minimum on every load —
// the probe is served by the store buffer's cached minimum instead of a
// rescan. "sb" keeps buffers shallow; "deep" runs a store-burst test
// with a widened drain window, so buffers hold many pending stores and
// the cached minimum replaces a real O(buf) scan per probe.
func BenchmarkSimLitmus7PSO(b *testing.B) {
	cfg, err := Preset("pso")
	if err != nil {
		b.Fatal(err)
	}
	deepSrc := `X86 pso-deep
{ a=0; b=0; c=0; d=0; e=0; f=0; x=0; y=0; }
 P0          | P1          ;
 MOV [a],$1  | MOV [e],$1  ;
 MOV [b],$1  | MOV [f],$1  ;
 MOV [c],$1  | MOV [x],$1  ;
 MOV [d],$1  | MOV [y],$1  ;
 MOV EAX,[x] | MOV EAX,[a] ;
 MOV EBX,[y] | MOV EBX,[b] ;
exists (0:EAX=0 /\ 1:EAX=0)
`
	deep, err := ParseLitmus(deepSrc)
	if err != nil {
		b.Fatal(err)
	}
	deepCfg := cfg
	deepCfg.DrainMax = cfg.DrainMax * 8
	sb, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		test *Test
		cfg  Config
	}{{"sb", sb, cfg}, {"deep", deep, deepCfg}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunLitmus7(bc.test, 5000, ModeUser, nil, bc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ----- ablation benchmarks (design choices called out in DESIGN.md) -----

// BenchmarkAblationDrainLatency reports the target-outcome rate as the
// store-buffer drain window scales: longer residency widens the window in
// which store buffering is observable.
func BenchmarkAblationDrainLatency(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	pt, err := Convert(test)
	if err != nil {
		b.Fatal(err)
	}
	counter, err := NewTargetCounter(pt)
	if err != nil {
		b.Fatal(err)
	}
	for _, scale := range []int64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("drain-x%d", scale), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.DrainMin *= scale
			cfg.DrainMax *= scale
			var hits, iters int64
			for i := 0; i < b.N; i++ {
				res, err := RunPerpLE(pt, counter, 5000, PerpLEOptions{Heuristic: true}, cfg.WithSeed(int64(i)+1))
				if err != nil {
					b.Fatal(err)
				}
				hits += res.Heuristic.Counts[0]
				iters += 5000
			}
			b.ReportMetric(float64(hits)/float64(iters), "hits/iter")
		})
	}
}

// BenchmarkAblationPreemption reports skew spread (P95-P5) as the
// preemption probability scales: preemption is the main skew source.
func BenchmarkAblationPreemption(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	pt, err := Convert(test)
	if err != nil {
		b.Fatal(err)
	}
	counter, err := NewTargetCounter(pt)
	if err != nil {
		b.Fatal(err)
	}
	for _, scale := range []float64{0, 1, 4} {
		b.Run(fmt.Sprintf("preempt-x%g", scale), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.PreemptProb *= scale
			var spread float64
			for i := 0; i < b.N; i++ {
				res, err := RunPerpLE(pt, counter, 20000, PerpLEOptions{Heuristic: true, KeepBufs: true}, cfg.WithSeed(int64(i)+1))
				if err != nil {
					b.Fatal(err)
				}
				samples := MeasureSkew(pt, res.Bufs)
				var min, max int64
				for _, s := range samples {
					if s.Skew < min {
						min = s.Skew
					}
					if s.Skew > max {
						max = s.Skew
					}
				}
				spread += float64(max - min)
			}
			b.ReportMetric(spread/float64(b.N), "skew-range")
		})
	}
}

// BenchmarkAblationBarrierCost reports litmus7-user runtime sensitivity
// to barrier cost, the dominant term of the paper's Figure 10 baselines.
func BenchmarkAblationBarrierCost(b *testing.B) {
	test, err := SuiteTest("sb")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []sim.Mode{sim.ModeUser, sim.ModePthread} {
		b.Run(mode.String(), func(b *testing.B) {
			var ticks int64
			for i := 0; i < b.N; i++ {
				res, err := harness.RunLitmus7(test, 2000, mode, nil, DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				ticks += res.Ticks
			}
			b.ReportMetric(float64(ticks)/float64(b.N)/2000, "ticks/iter")
		})
	}
}
