module perple

go 1.22
