// Command perple-run executes one litmus test on the simulated x86-TSO
// machine under a chosen tool: PerpLE with the exhaustive or heuristic
// outcome counter, or the litmus7-equivalent runner in any of its five
// synchronization modes.
//
// Usage:
//
//	perple-run -test sb                               # PerpLE heuristic, 10k iterations
//	perple-run -test sb -tool perple-exh -n 2000
//	perple-run -test iriw -tool litmus7-timebase -n 100000
//	perple-run -file my.litmus -tool litmus7-user
//	perple-run -test sb -outcomes all                 # count the whole outcome space
//	perple-run -test sb -skew                         # also print the skew histogram
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
	"perple/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-run: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	testName := flag.String("test", "", "suite test name")
	file := flag.String("file", "", "litmus7-style test file")
	tool := flag.String("tool", "perple-heur", "perple-heur, perple-exh, or litmus7-{user,userfence,pthread,timebase,none}")
	n := flag.Int("n", 10000, "iterations")
	seed := flag.Int64("seed", 1, "simulator seed")
	outcomes := flag.String("outcomes", "target", "outcomes of interest: target or all")
	skew := flag.Bool("skew", false, "print the thread-skew histogram (PerpLE tools only)")
	exhCap := flag.Int("exhcap", 0, "iteration cap for the exhaustive counter (0 = uncapped)")
	model := flag.String("model", "TSO", "simulated machine's memory system: TSO or PSO (fault injection)")
	trace := flag.Int("trace", 0, "record and print the last N machine events (stores, drains, loads, fences)")
	preset := flag.String("preset", "default", "machine preset (see internal/sim Presets)")
	workers := flag.Int("workers", 1, "worker goroutines for the exhaustive counter (0 = GOMAXPROCS)")
	flag.Parse()

	test, err := loadTest(*testName, *file)
	if err != nil {
		return err
	}
	cfg, err := sim.Preset(*preset)
	if err != nil {
		return err
	}
	cfg = cfg.WithSeed(*seed)
	switch strings.ToUpper(*model) {
	case "TSO":
	case "PSO":
		cfg.Relaxation = memmodel.PSO
	default:
		return fmt.Errorf("unknown -model %q (want TSO or PSO)", *model)
	}
	cfg.TraceSize = *trace

	var ooi []litmus.Outcome
	switch *outcomes {
	case "target":
		ooi = []litmus.Outcome{test.Target}
	case "all":
		ooi = test.AllOutcomes()
	default:
		return fmt.Errorf("unknown -outcomes %q (want target or all)", *outcomes)
	}

	if strings.HasPrefix(*tool, "litmus7-") {
		mode, err := sim.ParseMode(strings.TrimPrefix(*tool, "litmus7-"))
		if err != nil {
			return err
		}
		res, err := harness.RunLitmus7(test, *n, mode, ooi, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("litmus7 %s mode, %d iterations:\n\n", mode, *n)
		fmt.Print(harness.FormatLitmus7Report(res))
		if *trace > 0 {
			fmt.Printf("\nmachine trace (last %d events):\n%s", *trace, res.Trace.String())
		}
		if *outcomes == "all" {
			fmt.Println("\noutcomes of interest:")
			tb := stats.NewTable("outcome", "occurrences", "rate/Mtick")
			for i, o := range ooi {
				tb.AddRow(o.String(), res.OutcomeCounts[i], stats.Rate(res.OutcomeCounts[i], res.Ticks)*1e6)
			}
			fmt.Print(tb.String())
		}
		return nil
	}

	if *tool != "perple-heur" && *tool != "perple-exh" {
		return fmt.Errorf("unknown tool %q", *tool)
	}
	pt, err := core.Convert(test)
	if err != nil {
		return err
	}
	pos := make([]*core.PerpetualOutcome, len(ooi))
	for i, o := range ooi {
		if pos[i], err = core.ConvertOutcome(pt, o); err != nil {
			return err
		}
	}
	counter := core.NewCounter(pt, pos)
	opts := harness.PerpLEOptions{KeepBufs: *skew || (*tool == "perple-exh" && *workers != 1)}
	if *tool == "perple-exh" {
		opts.Exhaustive = true
		opts.ExhaustiveCap = *exhCap
	} else {
		opts.Heuristic = true
	}
	res, err := harness.RunPerpLE(pt, counter, *n, opts, cfg)
	if err != nil {
		return err
	}
	if *tool == "perple-exh" && *workers != 1 && res.Bufs != nil {
		// Re-count in parallel over the kept buffers (identical result,
		// wall-clock speedup on multi-core hosts).
		if res.Exhaustive, err = counter.CountExhaustiveParallel(context.Background(), res.Bufs, *workers); err != nil {
			return err
		}
	}

	cr := res.Heuristic
	total, wall := res.TotalTicksHeuristic(), res.WallExec+res.WallHeur
	if *tool == "perple-exh" {
		cr = res.Exhaustive
		total, wall = res.TotalTicksExhaustive(), res.WallExec+res.WallExh
		if res.ExhaustiveN < *n {
			fmt.Printf("note: exhaustive counter examined the first %d of %d iterations\n", res.ExhaustiveN, *n)
		}
	}
	fmt.Printf("test %s, PerpLE (%s), %d iterations, T_L=%d\n", test.Name, *tool, *n, pt.TL())
	fmt.Printf("simulated runtime: %d ticks (execution %d + counting %d); host %v\n",
		total, res.ExecTicks, total-res.ExecTicks, wall.Round(10e3))
	fmt.Printf("frames examined: %d\n\n", cr.Frames)
	tb := stats.NewTable("perpetual outcome of interest", "occurrences", "rate/Mtick")
	for i, po := range pos {
		label := po.Orig.String()
		if po.Unsatisfiable {
			label += " (unsatisfiable)"
		}
		tb.AddRow(label, cr.Counts[i], stats.Rate(cr.Counts[i], total)*1e6)
	}
	fmt.Print(tb.String())

	if *trace > 0 {
		fmt.Printf("\nmachine trace (last %d events):\n%s", *trace, res.Trace.String())
	}

	if *skew {
		samples := harness.MeasureSkew(pt, res.Bufs)
		vals := harness.SkewValues(samples, -1, -1)
		if len(vals) == 0 {
			fmt.Println("\nno skew samples (no cross-thread reads decoded)")
			return nil
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		width := (max - min) / 30
		if width < 1 {
			width = 1
		}
		h, err := stats.NewHistogram(min, max, width)
		if err != nil {
			return err
		}
		h.AddAll(vals)
		fmt.Printf("\nthread skew (%d samples, range [%d, %d]):\n%s", len(vals), min, max, h.Render(50))
	}
	return nil
}

func loadTest(name, file string) (*litmus.Test, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -test or -file, not both")
	case name != "":
		return litmus.SuiteTest(name)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return litmus.Parse(string(src))
	default:
		return nil, fmt.Errorf("no input: pass -test <name> or -file <path>")
	}
}
