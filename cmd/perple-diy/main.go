// Command perple-diy is a diy-style cycle-based litmus test generator: it
// synthesizes a litmus test from a relaxation-cycle specification,
// classifies its target under SC, x86-TSO and PSO, and can run it under
// both harnesses or convert it to its perpetual counterpart — the full
// generate → convert → run pipeline the paper's Section VIII describes.
//
// Usage:
//
//	perple-diy -cycle "PodWR Fre PodWR Fre"          # sb
//	perple-diy -cycle "PodWW Rfe PodRR Fre" -run 10000
//	perple-diy -cycle "Rfe PodRR Fre Rfe PodRR Fre" -name my-iriw -o out/
//	perple-diy -edges                                 # list edge kinds
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-diy: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cycle := flag.String("cycle", "", `relaxation cycle, e.g. "PodWR Fre PodWR Fre"`)
	name := flag.String("name", "generated", "test name")
	runN := flag.Int("run", 0, "also run the test for N iterations (PerpLE heuristic + litmus7 timebase)")
	outDir := flag.String("o", "", "also write the Converter's artifacts to this directory")
	seed := flag.Int64("seed", 1, "simulator seed for -run")
	listEdges := flag.Bool("edges", false, "list the supported cycle edges and exit")
	flag.Parse()

	if *listEdges {
		fmt.Println("external edges (move to a new thread, stay on one location):")
		fmt.Println("  Rfe    cross-thread read-from")
		fmt.Println("  Fre    cross-thread from-read")
		fmt.Println("  Wse    cross-thread write-serialization (adds a final-state pin)")
		fmt.Println("program-order edges (stay on the thread, change location):")
		fmt.Println("  PodWR  store;load   — relaxed by TSO and PSO")
		fmt.Println("  PodWW  store;store  — relaxed by PSO")
		fmt.Println("  PodRR  load;load    — never relaxed here")
		fmt.Println("  PodRW  load;store   — never relaxed here")
		fmt.Println("  FencedWR/RR/RW/WW   — the same with MFENCE, never relaxed")
		return nil
	}
	if *cycle == "" {
		return fmt.Errorf("pass -cycle (or -edges for help)")
	}

	edges, err := litmus.ParseCycle(*cycle)
	if err != nil {
		return err
	}
	test, err := litmus.FromCycle(*name, edges...)
	if err != nil {
		return err
	}
	fmt.Println(litmus.Format(test))

	for _, m := range memmodel.Models {
		allowed := memmodel.AxiomaticAllowed(test, test.Target, m)
		fmt.Printf("target under %-3v: %v\n", m, verdict(allowed))
	}

	convertible := !test.Target.HasMemConds()
	var pt *core.PerpetualTest
	if convertible {
		if pt, err = core.Convert(test); err != nil {
			return err
		}
		fmt.Printf("perpetual conversion: ok (T_L = %d)\n", pt.TL())
	} else {
		fmt.Println("perpetual conversion: not convertible (final-state conditions; run under litmus7)")
	}

	if *outDir != "" {
		if !convertible {
			return fmt.Errorf("-o requires a convertible test")
		}
		po, err := core.ConvertOutcome(pt, test.Target)
		if err != nil {
			return err
		}
		files := core.GeneratedFiles(pt, []*core.PerpetualOutcome{po})
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, fname := range core.SortedFileNames(files) {
			path := filepath.Join(*outDir, fname)
			if err := os.WriteFile(path, []byte(files[fname]), 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}

	if *runN > 0 {
		cfg := sim.DefaultConfig().WithSeed(*seed)
		lres, err := harness.RunLitmus7(test, *runN, sim.ModeTimebase, nil, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\n%d iterations on the simulated TSO machine:\n", *runN)
		fmt.Printf("  litmus7 timebase: %d target occurrences in %d ticks\n", lres.TargetCount, lres.Ticks)
		if convertible {
			counter, err := core.NewTargetCounter(pt)
			if err != nil {
				return err
			}
			pres, err := harness.RunPerpLE(pt, counter, *runN, harness.PerpLEOptions{Heuristic: true}, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("  PerpLE heuristic: %d target occurrences in %d ticks\n",
				pres.Heuristic.Counts[0], pres.TotalTicksHeuristic())
		}
	}
	return nil
}

func verdict(allowed bool) string {
	if allowed {
		return "allowed"
	}
	return "forbidden"
}
