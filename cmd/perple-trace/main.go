// Command perple-trace runs litmus tests on the simulated machine with
// witness-trace recording on and checks every recorded rf/co witness
// against a memory model with the near-linear checker of internal/trace.
// It is the simulator's runtime conformance oracle: where perple-lint
// classifies targets statically and the litmus7 harness counts outcomes,
// perple-trace certifies that each sampled execution the machine
// actually produced is consistent with x86-TSO (or SC under -sc) —
// and prints a minimal human-readable cycle for each one that is not.
//
// Usage:
//
//	perple-trace -suite                        # verify the built-in suite
//	perple-trace file.litmus dir/ ...          # verify files and directories
//	perple-trace -suite -preset pso            # fault-injected machine: expect violations
//	perple-trace -suite -every 16 -n 100000    # sample every 16th iteration
//	perple-trace -suite -sc                    # verify against SC (sb will fail: that
//	                                           # IS store buffering)
//
// Exit status: 0 all witnesses consistent, 1 violations found, 2 usage
// or execution error.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fl := flag.NewFlagSet("perple-trace", flag.ContinueOnError)
	fl.SetOutput(stderr)
	suite := fl.Bool("suite", false, "verify the built-in suite instead of files")
	n := fl.Int("n", 2000, "iterations per test")
	every := fl.Int("every", 1, "sampling stride: verify every k-th iteration")
	mode := fl.String("mode", "user", "litmus7 synchronization mode (user, userfence, pthread, timebase, none)")
	preset := fl.String("preset", "default", "machine preset (default, pso, slow-drain, ...)")
	seed := fl.Int64("seed", 1, "simulator seed")
	sc := fl.Bool("sc", false, "verify against sequential consistency instead of x86-TSO")
	workers := fl.Int("workers", 1, "batch workers per test (seeds derive per worker; results stay deterministic)")
	reports := fl.Int("reports", harness.DefaultTraceReports, "violation reports to render per test")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	simMode, err := sim.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(stderr, "perple-trace: %v\n", err)
		return 2
	}
	cfg, err := sim.Preset(*preset)
	if err != nil {
		fmt.Fprintf(stderr, "perple-trace: %v\n", err)
		return 2
	}
	cfg = cfg.WithSeed(*seed)
	if *every < 1 {
		fmt.Fprintf(stderr, "perple-trace: -every must be ≥ 1\n")
		return 2
	}

	var tests []*litmus.Test
	switch {
	case *suite:
		for _, e := range litmus.Suite() {
			tests = append(tests, e.Test)
		}
		tests = append(tests, litmus.NonConvertible()...)
	case fl.NArg() == 0:
		fmt.Fprintln(stderr, "perple-trace: no inputs; pass .litmus files or directories, or -suite")
		return 2
	default:
		for _, arg := range fl.Args() {
			loaded, err := loadPath(arg)
			if err != nil {
				fmt.Fprintf(stderr, "perple-trace: %v\n", err)
				return 2
			}
			tests = append(tests, loaded...)
		}
	}

	tv := harness.TraceVerify{Every: *every, SC: *sc, MaxReports: *reports}
	model := "x86-TSO"
	if *sc {
		model = "SC"
	}
	fmt.Fprintf(stdout, "verifying %d test(s) against %s: %d iterations each, stride %d, machine %s, mode %s\n",
		len(tests), model, *n, *every, *preset, *mode)

	var checked, violations int64
	failed := false
	for _, t := range tests {
		res, err := harness.RunLitmus7BatchVerify(t, *n, simMode, nil, cfg, *workers, tv)
		if err != nil {
			fmt.Fprintf(stderr, "perple-trace: %s: %v\n", t.Name, err)
			return 2
		}
		checked += res.TracesVerified
		violations += res.TraceViolations
		if res.TraceViolations == 0 {
			fmt.Fprintf(stdout, "%s: ok: %d witnesses consistent\n", t.Name, res.TracesVerified)
			continue
		}
		failed = true
		fmt.Fprintf(stdout, "%s: FAIL: %d of %d witnesses violate %s\n",
			t.Name, res.TraceViolations, res.TracesVerified, model)
		for _, rep := range res.TraceReports {
			fmt.Fprint(stdout, indent(rep))
		}
	}
	fmt.Fprintf(stdout, "%d witnesses checked, %d violation(s)\n", checked, violations)
	if failed {
		return 1
	}
	return 0
}

// loadPath parses one .litmus file or every .litmus file under a
// directory.
func loadPath(path string) ([]*litmus.Test, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		t, err := loadFile(path)
		if err != nil {
			return nil, err
		}
		return []*litmus.Test{t}, nil
	}
	var tests []*litmus.Test
	err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".litmus") {
			return nil
		}
		t, err := loadFile(p)
		if err != nil {
			return err
		}
		tests = append(tests, t)
		return nil
	})
	return tests, err
}

func loadFile(path string) (*litmus.Test, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := litmus.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
