// Command perple-vet runs the repo's invariant analyzers
// (internal/analysis) over module packages:
//
//   - nodeterminism: no wall clocks, global math/rand, or map-ordered
//     output on the result path;
//   - hotalloc: //perple:hotpath functions contain no
//     allocation-causing constructs (-escapes additionally cross-checks
//     the compiler's own escape analysis);
//   - mergeorder: map iteration never feeds encoders, writers, or
//     collected slices without an intervening sort;
//   - wirecompat: wire/checkpoint struct shapes match the committed
//     golden (regenerate with -update-wire).
//
// Findings are suppressed line-by-line with
//
//	//perple:allow <analyzer> <reason>
//
// on the finding's line or the line above; a suppression without a
// reason is itself a finding.
//
// Usage:
//
//	perple-vet ./...                      # vet the whole module
//	perple-vet ./internal/sim             # one package
//	perple-vet -analyzers hotalloc ./...  # a subset of passes
//	perple-vet -update-wire ./...         # rewrite the wire shape golden
//	perple-vet -json ./...                # machine-readable findings
//
// Exit status: 0 clean, 1 findings, 2 error — the same contract as
// perple-lint and perple-trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"perple/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("perple-vet", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit findings as a JSON array")
	analyzersFlag := fl.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	noScope := fl.Bool("no-scope", false, "ignore per-analyzer package scopes (used to vet fixture trees)")
	escapes := fl.Bool("escapes", false, "also run `go build -gcflags=-m` and report heap escapes in //perple:hotpath functions")
	wireGolden := fl.String("wire-golden", "", "wire shape golden file (default: <module root>/testdata/wire_shapes.json)")
	wireRoots := fl.String("wire-roots", "", "comma-separated wire root types as import/path.Type (default: the repo's wire and checkpoint roots)")
	updateWire := fl.Bool("update-wire", false, "rewrite the wire shape golden from the current structs instead of diffing")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if fl.NArg() == 0 {
		fmt.Fprintln(stderr, "perple-vet: no packages; pass directories or ./...")
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "perple-vet: %v\n", err)
		return 2
	}

	golden := *wireGolden
	if golden == "" {
		golden = filepath.Join(loader.ModuleRoot, "testdata", "wire_shapes.json")
	}
	var roots []string
	if *wireRoots != "" {
		roots = strings.Split(*wireRoots, ",")
	}
	all := []*analysis.Analyzer{
		analysis.NewNodeterminism(),
		analysis.NewHotalloc(),
		analysis.NewMergeorder(),
		analysis.NewWirecompat(analysis.WirecompatConfig{
			GoldenPath: golden,
			Roots:      roots,
			Update:     *updateWire,
		}),
	}
	selected, err := selectAnalyzers(all, *analyzersFlag, *updateWire)
	if err != nil {
		fmt.Fprintf(stderr, "perple-vet: %v\n", err)
		return 2
	}

	pkgs, err := loader.Load(fl.Args())
	if err != nil {
		fmt.Fprintf(stderr, "perple-vet: %v\n", err)
		return 2
	}

	runner := &analysis.Runner{Analyzers: selected, NoScope: *noScope}
	diags := runner.Run(loader.Fset, pkgs)

	if *escapes {
		ediags, err := analysis.RunEscapeCheck(loader.Fset, loader.ModuleRoot, pkgs)
		if err != nil {
			fmt.Fprintf(stderr, "perple-vet: %v\n", err)
			return 2
		}
		diags = append(diags, analysis.FilterSuppressed(loader.Fset, pkgs, ediags)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "perple-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, rel(loader.ModuleRoot, d))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers filters the full set by the -analyzers flag.
// -update-wire forces wirecompat into the selection: rewriting the
// golden is a wirecompat action regardless of which passes were asked
// for.
func selectAnalyzers(all []*analysis.Analyzer, spec string, updateWire bool) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(analysis.KnownAnalyzers, ", "))
		}
		if !seen[name] {
			out = append(out, a)
			seen[name] = true
		}
	}
	if updateWire && !seen["wirecompat"] {
		out = append(out, byName["wirecompat"])
	}
	return out, nil
}

// rel renders a diagnostic with its file path relative to the module
// root when possible — stable output regardless of invocation
// directory.
func rel(moduleRoot string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(moduleRoot, d.File); err == nil && !strings.HasPrefix(r, "..") {
		d.File = r
	}
	return d.String()
}
