package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perple/internal/analysis"
)

// chModuleRoot runs the test from the module root so relative fixture
// paths and the default golden resolve the same way CI invokes the
// driver.
func chModuleRoot(t *testing.T) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
	t.Chdir(dir)
}

func TestBadFixturesExitOne(t *testing.T) {
	chModuleRoot(t)
	cases := []struct {
		name string
		args []string
	}{
		{"nodeterminism", []string{"-no-scope", "-analyzers", "nodeterminism", "internal/analysis/testdata/src/nodeterminism/bad"}},
		{"hotalloc", []string{"-no-scope", "-analyzers", "hotalloc", "internal/analysis/testdata/src/hotalloc/bad"}},
		{"mergeorder", []string{"-no-scope", "-analyzers", "mergeorder", "internal/analysis/testdata/src/mergeorder/bad"}},
		{"wirecompat", []string{"-no-scope", "-analyzers", "wirecompat",
			"-wire-golden", "internal/analysis/testdata/src/wirecompat/bad/shapes_stale.json",
			"-wire-roots", "perple/internal/analysis/testdata/src/wirecompat/bad.Payload",
			"internal/analysis/testdata/src/wirecompat/bad"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(tc.args, &out, &errb); code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), tc.name+":") {
				t.Fatalf("stdout carries no %s findings:\n%s", tc.name, out.String())
			}
		})
	}
}

func TestGoodFixturesExitZero(t *testing.T) {
	chModuleRoot(t)
	for _, name := range []string{"nodeterminism", "hotalloc", "mergeorder"} {
		t.Run(name, func(t *testing.T) {
			var out, errb strings.Builder
			args := []string{"-no-scope", "-analyzers", name, "internal/analysis/testdata/src/" + name + "/good"}
			if code := run(args, &out, &errb); code != 0 {
				t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	chModuleRoot(t)
	var out, errb strings.Builder
	args := []string{"-json", "-no-scope", "-analyzers", "nodeterminism", "internal/analysis/testdata/src/nodeterminism/bad"}
	if code := run(args, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Analyzer != "nodeterminism" || diags[0].Line == 0 {
		t.Fatalf("unexpected diagnostics: %+v", diags)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	chModuleRoot(t)
	for name, args := range map[string][]string{
		"no packages":      {},
		"unknown analyzer": {"-analyzers", "nosuchpass", "./internal/sim"},
		"bad flag":         {"-definitely-not-a-flag"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run(args, &out, &errb); code != 2 {
				t.Fatalf("exit = %d, want 2", code)
			}
		})
	}
}
