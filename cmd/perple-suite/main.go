// Command perple-suite runs a whole corpus of litmus tests — the built-in
// Table II suite or a directory of .litmus files — under one testing
// tool, printing a per-test summary and campaign totals. It is the
// Section VII-G workflow as a tool: PerpLE for the convertible tests and
// litmus7 for the rest.
//
// Usage:
//
//	perple-suite                                   # built-in suite, PerpLE heuristic
//	perple-suite -dir testdata/suite -n 10000
//	perple-suite -tool litmus7-timebase
//	perple-suite -preset pso                       # fault-injection machine
//	perple-suite -mixed                            # §VII-G campaign: PerpLE where
//	                                               # convertible, litmus7-user elsewhere
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/sim"
	"perple/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-suite: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "directory of .litmus files (default: the built-in Table II suite)")
	tool := flag.String("tool", "perple-heur", "perple-heur, perple-exh, or litmus7-{user,userfence,pthread,timebase,none}")
	mixed := flag.Bool("mixed", false, "run the Section VII-G campaign: PerpLE-heuristic for convertible tests, litmus7-user for the rest")
	n := flag.Int("n", 10000, "iterations per test")
	seed := flag.Int64("seed", 1, "simulator seed")
	preset := flag.String("preset", "default", "machine preset (default, pso, slow-drain, fast-drain, no-preempt, heavy-preempt)")
	exhCap := flag.Int("exhcap", 2000, "iteration cap for the exhaustive counter (-1 = uncapped)")
	flag.Parse()

	cfg, err := sim.Preset(*preset)
	if err != nil {
		return err
	}
	cfg = cfg.WithSeed(*seed)

	tests, err := loadCorpus(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d tests, tool: %s, machine: %s, %d iterations each\n\n",
		len(tests), toolName(*tool, *mixed), *preset, *n)

	tb := stats.NewTable("test", "tool", "target", "ticks", "rate/Mtick", "note")
	var totalTicks, totalTargets int64
	for _, test := range tests {
		row, err := runOne(test, *tool, *mixed, *n, *exhCap, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", test.Name, err)
		}
		totalTicks += row.ticks
		totalTargets += row.target
		tb.AddRow(test.Name, row.tool, row.target, row.ticks,
			stats.Rate(row.target, row.ticks)*1e6, row.note)
	}
	fmt.Print(tb.String())
	fmt.Printf("\ncampaign totals: %d target occurrences, %d simulated ticks\n", totalTargets, totalTicks)
	return nil
}

type rowResult struct {
	tool   string
	target int64
	ticks  int64
	note   string
}

func runOne(test *litmus.Test, tool string, mixed bool, n, exhCap int, cfg sim.Config) (rowResult, error) {
	convertible := !test.Target.HasMemConds()
	useTool := tool
	if mixed {
		if convertible {
			useTool = "perple-heur"
		} else {
			useTool = "litmus7-user"
		}
	}

	if strings.HasPrefix(useTool, "litmus7-") {
		mode, err := sim.ParseMode(strings.TrimPrefix(useTool, "litmus7-"))
		if err != nil {
			return rowResult{}, err
		}
		res, err := harness.RunLitmus7(test, n, mode, nil, cfg)
		if err != nil {
			return rowResult{}, err
		}
		return rowResult{tool: useTool, target: res.TargetCount, ticks: res.Ticks}, nil
	}

	if !convertible {
		// PerpLE cannot run final-state targets: fall back, with a note,
		// exactly as the paper prescribes (Section VII-G).
		res, err := harness.RunLitmus7(test, n, sim.ModeUser, nil, cfg)
		if err != nil {
			return rowResult{}, err
		}
		return rowResult{tool: "litmus7-user", target: res.TargetCount, ticks: res.Ticks,
			note: "not convertible"}, nil
	}

	pt, err := core.Convert(test)
	if err != nil {
		return rowResult{}, err
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		return rowResult{}, err
	}
	opts := harness.PerpLEOptions{}
	switch useTool {
	case "perple-heur":
		opts.Heuristic = true
	case "perple-exh":
		opts.Exhaustive = true
		if exhCap > 0 {
			opts.ExhaustiveCap = exhCap
		}
	default:
		return rowResult{}, fmt.Errorf("unknown tool %q", useTool)
	}
	res, err := harness.RunPerpLE(pt, counter, n, opts, cfg)
	if err != nil {
		return rowResult{}, err
	}
	if useTool == "perple-exh" {
		note := ""
		if res.ExhaustiveN < n {
			note = fmt.Sprintf("exh capped at %d", res.ExhaustiveN)
		}
		return rowResult{tool: useTool, target: res.Exhaustive.Counts[0],
			ticks: res.TotalTicksExhaustive(), note: note}, nil
	}
	return rowResult{tool: useTool, target: res.Heuristic.Counts[0],
		ticks: res.TotalTicksHeuristic()}, nil
}

func toolName(tool string, mixed bool) string {
	if mixed {
		return "mixed (PerpLE-heur + litmus7-user)"
	}
	return tool
}

// loadCorpus reads every .litmus file of a directory, or returns the
// built-in suite plus the non-convertible examples when dir is empty.
func loadCorpus(dir string) ([]*litmus.Test, error) {
	if dir == "" {
		var tests []*litmus.Test
		for _, e := range litmus.Suite() {
			tests = append(tests, e.Test)
		}
		tests = append(tests, litmus.NonConvertible()...)
		return tests, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".litmus") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .litmus files in %s", dir)
	}
	var tests []*litmus.Test
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		test, err := litmus.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		tests = append(tests, test)
	}
	return tests, nil
}
