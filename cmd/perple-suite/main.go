// Command perple-suite runs a whole corpus of litmus tests — the built-in
// Table II suite or a directory of .litmus files — under one testing
// tool, printing a per-test summary and campaign totals. It is the
// Section VII-G workflow as a tool: PerpLE for the convertible tests and
// litmus7 for the rest.
//
// A failing test no longer aborts the sweep: failures are collected,
// summarized after the table, and reflected in the exit status.
//
// Usage:
//
//	perple-suite                                   # built-in suite, PerpLE heuristic
//	perple-suite -dir testdata/suite -n 10000
//	perple-suite -tool litmus7-timebase
//	perple-suite -preset pso                       # fault-injection machine
//	perple-suite -mixed                            # §VII-G campaign: PerpLE where
//	                                               # convertible, litmus7-user elsewhere
//
// With -campaign the corpus is handed to the campaign scheduler
// (internal/campaign): sharded jobs, a context-aware worker pool,
// retries, and optional checkpoint/resume — the same engine behind
// perple-serve.
//
//	perple-suite -campaign -dir testdata/suite -n 50000 -shard-size 10000 \
//	    -checkpoint /tmp/suite.json      # Ctrl-C, rerun, and it resumes
//	perple-suite -campaign -spec campaign.json
//
// With -remote the same spec is submitted to a running perple-serve as a
// dispatch-mode campaign: perple-worker fleet members execute the shards
// and this command polls until done, then renders the merged results —
// byte-identical to what the local -campaign path would have produced,
// by the dispatch layer's determinism contract.
//
//	perple-suite -remote http://localhost:8077 -n 50000 -shard-size 10000
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"perple/internal/campaign"
	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/sim"
	"perple/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-suite: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "directory of .litmus files (default: the built-in Table II suite)")
	tool := flag.String("tool", "perple-heur", "perple-heur, perple-exh, or litmus7-{user,userfence,pthread,timebase,none}")
	mixed := flag.Bool("mixed", false, "run the Section VII-G campaign: PerpLE-heuristic for convertible tests, litmus7-user for the rest")
	n := flag.Int("n", 10000, "iterations per test")
	seed := flag.Int64("seed", 1, "simulator seed")
	preset := flag.String("preset", "default", "machine preset (default, pso, slow-drain, fast-drain, no-preempt, heavy-preempt)")
	exhCap := flag.Int("exhcap", 2000, "iteration cap for the exhaustive counter (-1 = uncapped)")
	useCampaign := flag.Bool("campaign", false, "delegate the sweep to the campaign scheduler (sharded, parallel, resumable)")
	specPath := flag.String("spec", "", "campaign spec JSON file (implies -campaign; overrides the other flags)")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint file: progress is saved there and a rerun resumes")
	shardSize := flag.Int("shard-size", 0, "campaign iterations per shard (default: one shard per test/tool/preset)")
	workers := flag.Int("workers", 0, "campaign worker goroutines (default: GOMAXPROCS)")
	intraWorkers := flag.Int("intra-workers", 1, "worker goroutines inside each campaign job (result-affecting; recorded in checkpoints)")
	remote := flag.String("remote", "", "perple-serve base URL: submit the campaign as a dispatch job for perple-worker fleet members")
	axiomPolicy := flag.String("axiom", "", "campaign axiom policy: warn (default) flags statically forbidden/unsatisfiable targets, reject drops them from the sweep, off skips the check")
	traceVerify := flag.String("trace-verify", "", "witness-trace verification for litmus7 runs: off (default), all, or a decimal stride k — check every k-th iteration's rf/co witness against x86-TSO")
	flag.Parse()

	if *remote != "" {
		spec, err := buildSpec(*specPath, *dir, *tool, *mixed, *n, *seed, *preset, *exhCap,
			*shardSize, *workers, *intraWorkers, *axiomPolicy, *traceVerify)
		if err != nil {
			return err
		}
		return runRemote(*remote, spec)
	}
	if *useCampaign || *specPath != "" {
		return runCampaign(*specPath, *dir, *tool, *mixed, *n, *seed, *preset, *exhCap,
			*checkpoint, *shardSize, *workers, *intraWorkers, *axiomPolicy, *traceVerify)
	}
	tvEvery, err := campaign.ParseTraceVerify(*traceVerify)
	if err != nil {
		return err
	}

	cfg, err := sim.Preset(*preset)
	if err != nil {
		return err
	}
	cfg = cfg.WithSeed(*seed)

	tests, err := loadCorpus(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d tests, tool: %s, machine: %s, %d iterations each\n\n",
		len(tests), toolName(*tool, *mixed), *preset, *n)

	tb := stats.NewTable("test", "tool", "target", "ticks", "rate/Mtick", "note")
	var totalTicks, totalTargets int64
	var tvTotals traceTotals
	var failures []string
	for _, test := range tests {
		row, err := runOne(test, *tool, *mixed, *n, *exhCap, cfg, tvEvery, &tvTotals)
		if err != nil {
			// Collect and keep sweeping: one broken test must not hide
			// the results of the other 39.
			failures = append(failures, fmt.Sprintf("%s: %v", test.Name, err))
			tb.AddRow(test.Name, "-", "-", "-", "-", "FAILED")
			continue
		}
		totalTicks += row.ticks
		totalTargets += row.target
		tb.AddRow(test.Name, row.tool, row.target, row.ticks,
			stats.Rate(row.target, row.ticks)*1e6, row.note)
	}
	fmt.Print(tb.String())
	fmt.Printf("\ncampaign totals: %d target occurrences, %d simulated ticks\n", totalTargets, totalTicks)
	if err := tvTotals.report(tvEvery); err != nil && len(failures) == 0 {
		return err
	}
	if len(failures) > 0 {
		fmt.Printf("\n%d test(s) failed:\n", len(failures))
		for _, f := range failures {
			fmt.Printf("  %s\n", f)
		}
		return fmt.Errorf("%d of %d tests failed", len(failures), len(tests))
	}
	return nil
}

// traceTotals accumulates witness-trace verification tallies across a
// sweep, with the rendered reports capped like the harness caps them.
type traceTotals struct {
	verified   int64
	violations int64
	reports    []string
}

func (tt *traceTotals) add(res *harness.Litmus7Result) {
	tt.verified += res.TracesVerified
	tt.violations += res.TraceViolations
	for _, rep := range res.TraceReports {
		if len(tt.reports) < harness.DefaultTraceReports {
			tt.reports = append(tt.reports, rep)
		}
	}
}

// report prints the verification summary and returns an error when the
// machine violated its model — a trace violation is a conformance bug,
// not a statistic, so it must fail the sweep's exit status.
func (tt *traceTotals) report(every int) error {
	if every == 0 {
		return nil
	}
	fmt.Printf("trace-verify: %d witnesses checked (stride %d), %d violation(s)\n",
		tt.verified, every, tt.violations)
	for _, rep := range tt.reports {
		fmt.Printf("\n%s\n", rep)
	}
	if tt.violations > 0 {
		return fmt.Errorf("trace verification found %d violation(s)", tt.violations)
	}
	return nil
}

// runCampaign hands the sweep to the campaign scheduler. The spec comes
// from -spec JSON when given, otherwise it is assembled from the same
// flags the sequential path uses.
func runCampaign(specPath, dir, tool string, mixed bool, n int, seed int64, preset string,
	exhCap int, checkpoint string, shardSize, workers, intraWorkers int, axiomPolicy, traceVerify string) error {
	spec, err := buildSpec(specPath, dir, tool, mixed, n, seed, preset, exhCap,
		shardSize, workers, intraWorkers, axiomPolicy, traceVerify)
	if err != nil {
		return err
	}

	camp, err := campaign.New(spec)
	if err != nil {
		return err
	}
	printAxiomFlags(camp.AxiomInfo())
	testNames := map[string]bool{}
	for _, job := range camp.Jobs() {
		testNames[job.Test] = true
	}
	fmt.Printf("campaign: %d jobs (%d tests), %d workers",
		len(camp.Jobs()), len(testNames), spec.Workers)
	if checkpoint != "" {
		fmt.Printf(", checkpoint %s", checkpoint)
	}
	fmt.Println()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	metrics := &campaign.Metrics{}
	done := 0
	var tvTotals traceTotals
	res, err := camp.Run(ctx, campaign.Options{
		CheckpointPath: checkpoint,
		Metrics:        metrics,
		OnJobDone: func(jr *campaign.JobResult) {
			done++
			for _, rep := range jr.TraceReports {
				if len(tvTotals.reports) < harness.DefaultTraceReports {
					tvTotals.reports = append(tvTotals.reports, rep)
				}
			}
			fmt.Fprintf(os.Stderr, "\r%d/%d jobs", done+int(metrics.JobsRestored.Load()), len(camp.Jobs()))
		},
	})
	fmt.Fprintln(os.Stderr)
	if res != nil {
		fmt.Print(res.Render())
	}
	if err != nil {
		if checkpoint != "" {
			return fmt.Errorf("%w (progress saved to %s; rerun to resume)", err, checkpoint)
		}
		return err
	}
	tvTotals.verified = metrics.TracesVerified.Load()
	tvTotals.violations = metrics.TraceViolations.Load()
	if err := tvTotals.report(spec.TraceVerifyEvery()); err != nil {
		return err
	}
	if len(res.Failures) > 0 {
		return fmt.Errorf("%d job(s) failed", len(res.Failures))
	}
	return nil
}

// buildSpec assembles a campaign spec from -spec JSON when given,
// otherwise from the same flags the sequential path uses.
func buildSpec(specPath, dir, tool string, mixed bool, n int, seed int64, preset string,
	exhCap, shardSize, workers, intraWorkers int, axiomPolicy, traceVerify string) (campaign.Spec, error) {
	if specPath != "" {
		spec, err := campaign.LoadSpec(specPath)
		if err == nil && axiomPolicy != "" {
			spec.Axiom = axiomPolicy
			err = spec.Validate()
		}
		if err == nil && traceVerify != "" {
			spec.TraceVerify = traceVerify
			err = spec.Validate()
		}
		return spec, err
	}
	campaignTool := tool
	if mixed {
		campaignTool = "mixed"
	}
	spec := campaign.Spec{
		Dir:          dir,
		Tools:        []string{campaignTool},
		Presets:      []string{preset},
		Seed:         seed,
		Iterations:   n,
		ShardSize:    shardSize,
		ExhCap:       exhCap,
		Workers:      workers,
		IntraWorkers: intraWorkers,
		Axiom:        axiomPolicy,
		TraceVerify:  traceVerify,
	}
	if err := spec.Validate(); err != nil {
		return campaign.Spec{}, err
	}
	return spec, nil
}

// printAxiomFlags surfaces noteworthy static classifications before the
// sweep starts: rejected tests, unsatisfiable or forbidden targets (a
// forbidden target means the budget can only ever detect simulator
// conformance bugs), and tests beyond the exact-enumeration cutoff.
func printAxiomFlags(info map[string]campaign.TestAxiom) {
	names := make([]string, 0, len(info))
	for name := range info {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ta := info[name]
		switch {
		case ta.Excluded:
			fmt.Printf("axiom: %s: target statically rejected (%s); excluded from the sweep\n",
				name, axiomReason(ta))
		case ta.Unsatisfiable:
			fmt.Printf("axiom: warn: %s: target is unsatisfiable — no execution can produce it\n", name)
		case ta.Class == "forbidden":
			fmt.Printf("axiom: warn: %s: target is forbidden under SC and TSO; iterations can only detect conformance bugs\n", name)
		case ta.Note != "":
			fmt.Printf("axiom: note: %s: %s\n", name, ta.Note)
		}
	}
}

func axiomReason(ta campaign.TestAxiom) string {
	if ta.Unsatisfiable {
		return "unsatisfiable"
	}
	return ta.Class
}

// runRemote submits the spec to a perple-serve instance as a dispatch
// campaign, polls until fleet workers finish it, and renders the merged
// results. The test corpus must be resolvable on the server (built-in
// suite, or a -dir path valid there).
func runRemote(baseURL string, spec campaign.Spec) error {
	client := &http.Client{Timeout: 30 * time.Second}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/campaigns?mode=dispatch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var submitted struct {
		ID    string `json:"id"`
		Jobs  int    `json:"jobs"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}
	if submitted.Error != "" {
		return fmt.Errorf("server rejected campaign: %s", submitted.Error)
	}
	fmt.Printf("campaign %s: %d jobs queued for dispatch at %s — point perple-worker at it\n",
		submitted.ID, submitted.Jobs, baseURL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var tvTotals traceTotals
	for {
		var status struct {
			State    string `json:"state"`
			Error    string `json:"error"`
			Dispatch *struct {
				Pending int `json:"pending"`
				Leased  int `json:"leased"`
				Done    int `json:"done"`
				Failed  int `json:"failed"`
			} `json:"dispatch"`
			Metrics struct {
				TracesVerified  int64 `json:"traces_verified"`
				TraceViolations int64 `json:"trace_violations"`
			} `json:"metrics"`
			TraceReports []string `json:"trace_reports"`
		}
		if err := getJSON(ctx, client, fmt.Sprintf("%s/campaigns/%s", baseURL, submitted.ID), &status); err != nil {
			return err
		}
		tvTotals.verified = status.Metrics.TracesVerified
		tvTotals.violations = status.Metrics.TraceViolations
		tvTotals.reports = status.TraceReports
		if d := status.Dispatch; d != nil {
			fmt.Fprintf(os.Stderr, "\r%d done, %d leased, %d pending", d.Done, d.Leased, d.Pending)
		}
		if status.State != "running" {
			fmt.Fprintln(os.Stderr)
			if status.Error != "" {
				return fmt.Errorf("campaign %s %s: %s", submitted.ID, status.State, status.Error)
			}
			break
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr)
			return ctx.Err()
		case <-time.After(time.Second):
		}
	}

	// The canonical document is the dispatch layer's determinism surface;
	// decode it back into an accumulator so the report matches the local
	// -campaign rendering.
	var doc struct {
		Groups   []*campaign.GroupResult `json:"groups"`
		Failures []campaign.JobFailure   `json:"failures"`
	}
	if err := getJSON(ctx, client, fmt.Sprintf("%s/campaigns/%s/results?format=canonical", baseURL, submitted.ID), &doc); err != nil {
		return err
	}
	res := campaign.NewResults()
	for _, g := range doc.Groups {
		res.Groups[campaign.GroupKey(g.Test, g.Tool, g.Preset)] = g
	}
	res.Failures = doc.Failures
	fmt.Print(res.Render())
	if err := tvTotals.report(spec.TraceVerifyEvery()); err != nil {
		return err
	}
	if len(res.Failures) > 0 {
		return fmt.Errorf("%d job(s) failed", len(res.Failures))
	}
	return nil
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

type rowResult struct {
	tool   string
	target int64
	ticks  int64
	note   string
}

func runOne(test *litmus.Test, tool string, mixed bool, n, exhCap int, cfg sim.Config,
	tvEvery int, tvTotals *traceTotals) (rowResult, error) {
	convertible := !test.Target.HasMemConds()
	useTool := tool
	if mixed {
		if convertible {
			useTool = "perple-heur"
		} else {
			useTool = "litmus7-user"
		}
	}

	if strings.HasPrefix(useTool, "litmus7-") {
		mode, err := sim.ParseMode(strings.TrimPrefix(useTool, "litmus7-"))
		if err != nil {
			return rowResult{}, err
		}
		res, err := harness.RunLitmus7BatchVerify(test, n, mode, nil, cfg, 1,
			harness.TraceVerify{Every: tvEvery})
		if err != nil {
			return rowResult{}, err
		}
		row := rowResult{tool: useTool, target: res.TargetCount, ticks: res.Ticks}
		if tvEvery > 0 {
			tvTotals.add(res)
			if res.TraceViolations > 0 {
				row.note = fmt.Sprintf("%d trace violation(s)", res.TraceViolations)
			}
		}
		return row, nil
	}

	if !convertible {
		// PerpLE cannot run final-state targets: fall back, with a note,
		// exactly as the paper prescribes (Section VII-G).
		res, err := harness.RunLitmus7(test, n, sim.ModeUser, nil, cfg)
		if err != nil {
			return rowResult{}, err
		}
		return rowResult{tool: "litmus7-user", target: res.TargetCount, ticks: res.Ticks,
			note: "not convertible"}, nil
	}

	pt, err := core.Convert(test)
	if err != nil {
		return rowResult{}, err
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		return rowResult{}, err
	}
	opts := harness.PerpLEOptions{}
	switch useTool {
	case "perple-heur":
		opts.Heuristic = true
	case "perple-exh":
		opts.Exhaustive = true
		if exhCap > 0 {
			opts.ExhaustiveCap = exhCap
		}
	default:
		return rowResult{}, fmt.Errorf("unknown tool %q", useTool)
	}
	res, err := harness.RunPerpLE(pt, counter, n, opts, cfg)
	if err != nil {
		return rowResult{}, err
	}
	if useTool == "perple-exh" {
		note := ""
		if res.ExhaustiveN < n {
			note = fmt.Sprintf("exh capped at %d", res.ExhaustiveN)
		}
		return rowResult{tool: useTool, target: res.Exhaustive.Counts[0],
			ticks: res.TotalTicksExhaustive(), note: note}, nil
	}
	return rowResult{tool: useTool, target: res.Heuristic.Counts[0],
		ticks: res.TotalTicksHeuristic()}, nil
}

func toolName(tool string, mixed bool) string {
	if mixed {
		return "mixed (PerpLE-heur + litmus7-user)"
	}
	return tool
}

// loadCorpus reads every .litmus file of a directory, or returns the
// built-in suite plus the non-convertible examples when dir is empty.
func loadCorpus(dir string) ([]*litmus.Test, error) {
	if dir == "" {
		var tests []*litmus.Test
		for _, e := range litmus.Suite() {
			tests = append(tests, e.Test)
		}
		tests = append(tests, litmus.NonConvertible()...)
		return tests, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".litmus") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .litmus files in %s", dir)
	}
	var tests []*litmus.Test
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		test, err := litmus.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		tests = append(tests, test)
	}
	return tests, nil
}
