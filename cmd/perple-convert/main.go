// Command perple-convert is the PerpLE Converter front end: it reads a
// litmus test (a litmus7-style file, or a named test from the built-in
// perpetual suite), converts it to its perpetual counterpart and writes
// the Converter's output artifacts — per-thread perpetual assembly, the
// exhaustive and heuristic outcome counters as Go source, and the
// t_i_reads parameters file (Section V-A of the paper).
//
// Usage:
//
//	perple-convert -test sb -o out/            # suite test by name
//	perple-convert -file my.litmus -o out/     # litmus7-style file
//	perple-convert -test sb -print             # dump to stdout
//	perple-convert -test sb -outcomes all      # all outcomes, not just target
//	perple-convert -list                       # list suite tests
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"perple/internal/core"
	"perple/internal/litmus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-convert: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	testName := flag.String("test", "", "suite test name (see -list)")
	file := flag.String("file", "", "litmus7-style test file")
	outDir := flag.String("o", ".", "output directory for generated files")
	print := flag.Bool("print", false, "print generated files to stdout instead of writing them")
	outcomes := flag.String("outcomes", "target", "outcomes of interest: target or all")
	explain := flag.Bool("explain", false, "narrate the conversion steps (paper Figures 6 and 8) instead of emitting files")
	list := flag.Bool("list", false, "list the built-in perpetual suite and exit")
	flag.Parse()

	if *list {
		for _, e := range litmus.Suite() {
			group := "forbidden"
			if e.Allowed {
				group = "allowed"
			}
			fmt.Printf("%-14s [%d,%d]  %-9s  %s\n", e.Test.Name, e.Test.T(), e.Test.TL(), group, e.Test.Doc)
		}
		return nil
	}

	test, err := loadTest(*testName, *file)
	if err != nil {
		return err
	}

	pt, err := core.Convert(test)
	if err != nil {
		return err
	}

	if *explain {
		targets := []litmus.Outcome{test.Target}
		if *outcomes == "all" {
			targets = test.AllOutcomes()
		}
		for i, o := range targets {
			if i > 0 {
				fmt.Println()
			}
			_, ex, err := core.Explain(pt, o)
			if err != nil {
				return err
			}
			fmt.Print(ex.String())
		}
		return nil
	}

	var pos []*core.PerpetualOutcome
	switch *outcomes {
	case "target":
		po, err := core.ConvertOutcome(pt, test.Target)
		if err != nil {
			return err
		}
		pos = []*core.PerpetualOutcome{po}
	case "all":
		if pos, err = core.ConvertAllOutcomes(pt); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -outcomes %q (want target or all)", *outcomes)
	}

	files := core.GeneratedFiles(pt, pos)
	names := core.SortedFileNames(files)
	if *print {
		for _, name := range names {
			fmt.Printf("===== %s =====\n%s\n", name, files[name])
		}
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(files[name]), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}

func loadTest(name, file string) (*litmus.Test, error) {
	switch {
	case name != "" && file != "":
		return nil, fmt.Errorf("use either -test or -file, not both")
	case name != "":
		return litmus.SuiteTest(name)
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return litmus.Parse(string(src))
	default:
		return nil, fmt.Errorf("no input: pass -test <name> or -file <path> (or -list)")
	}
}
