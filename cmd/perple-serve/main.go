// Command perple-serve runs the campaign scheduler as a long-lived HTTP
// service: clients submit campaign specs (litmus suite × machine presets
// × tools × iteration budget), the service shards and executes them on a
// context-aware worker pool, and progress, metrics, and merged results
// are observable while runs are in flight. Campaigns checkpoint under
// -checkpoint-dir, so a run killed with the service resumes when the
// same spec is resubmitted against the same checkpoint file.
//
// Endpoints:
//
//	GET  /healthz                  liveness probe
//	GET  /metrics                  aggregate scheduler gauges (JSON)
//	POST /campaigns                submit a spec JSON, returns {"id": ...}
//	GET  /campaigns                list campaigns
//	GET  /campaigns/{id}           status + metrics snapshot
//	GET  /campaigns/{id}/results   merged totals once finished
//	POST /campaigns/{id}/cancel    abort a running campaign
//
// Usage:
//
//	perple-serve -addr :8077 -checkpoint-dir /var/lib/perple
//	curl -X POST localhost:8077/campaigns -d '{"dir":"testdata/suite","tools":["mixed"],"iterations":20000,"shard_size":5000}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perple/internal/campaign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8077", "listen address")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for per-campaign checkpoint files (empty disables checkpointing)")
	flag.Parse()

	srv := campaign.NewServer()
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return err
		}
		srv.CheckpointDir = *checkpointDir
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("perple-serve listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: abort campaigns (their checkpoints persist),
	// then drain HTTP connections.
	log.Printf("perple-serve shutting down")
	srv.CancelAll()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
