// Command perple-serve runs the campaign scheduler as a long-lived HTTP
// service: clients submit campaign specs (litmus suite × machine presets
// × tools × iteration budget), the service shards and executes them on a
// context-aware worker pool, and progress, metrics, and merged results
// are observable while runs are in flight. Campaigns checkpoint under
// -checkpoint-dir, so a run killed with the service resumes when the
// same spec is resubmitted against the same checkpoint file.
//
// Endpoints:
//
//	GET  /healthz                    liveness probe
//	GET  /metrics                    aggregate scheduler gauges (JSON, or
//	                                 Prometheus text when Accept asks for it)
//	POST /campaigns                  submit a spec JSON, returns {"id": ...};
//	                                 ?mode=dispatch queues for remote workers
//	GET  /campaigns                  list campaigns
//	GET  /campaigns/{id}             status + metrics snapshot
//	GET  /campaigns/{id}/results     merged totals once finished
//	                                 (?format=canonical for the byte-stable JSON)
//	POST /campaigns/{id}/cancel      abort a running campaign
//	GET  /campaigns/{id}/corpus      dispatch: spec + test sources for workers
//	POST /campaigns/{id}/lease       dispatch: grant shard leases to a worker
//	POST /campaigns/{id}/heartbeat   dispatch: extend held leases
//	POST /campaigns/{id}/complete    dispatch: upload batched results (gzip)
//
// With -pprof the net/http/pprof profiling endpoints are mounted under
// /debug/pprof/ — off by default because they expose internals.
//
// Usage:
//
//	perple-serve -addr :8077 -checkpoint-dir /var/lib/perple
//	curl -X POST localhost:8077/campaigns -d '{"dir":"testdata/suite","tools":["mixed"],"iterations":20000,"shard_size":5000}'
//	curl -X POST 'localhost:8077/campaigns?mode=dispatch' -d @spec.json   # then point perple-worker at it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perple/internal/campaign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8077", "listen address")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for per-campaign checkpoint files (empty disables checkpointing)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "snapshot every n completed jobs (0: every job)")
	leaseTTL := flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "dispatch lease TTL before an unheartbeated shard requeues")
	walDir := flag.String("wal", "", "directory for per-campaign dispatch write-ahead logs (requires -checkpoint-dir; empty disables the durable dispatch plane)")
	walSyncEvery := flag.Int("wal-sync-every", 0, "fsync the WAL every n records (group commit; 0 or 1: every record)")
	compactEvery := flag.Int("compact-every", 0, "fold the WAL into a fresh checkpoint every n finished jobs (0: default 64)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv := campaign.NewServer()
	srv.LeaseTTL = *leaseTTL
	srv.CheckpointEvery = *checkpointEvery
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return err
		}
		srv.CheckpointDir = *checkpointDir
	}
	if *walDir != "" {
		if *checkpointDir == "" {
			return errors.New("-wal requires -checkpoint-dir (the log compacts into the checkpoint)")
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return err
		}
		srv.WALDir = *walDir
		srv.WALSyncEvery = *walSyncEvery
		srv.CompactEvery = *compactEvery
	}

	handler := srv.Handler()
	if *pprofOn {
		// The campaign mux owns "/", so pprof gets its own prefix mux in
		// front rather than the DefaultServeMux side-registration.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("perple-serve listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: abort campaigns (their checkpoints persist),
	// then drain HTTP connections.
	log.Printf("perple-serve shutting down")
	srv.CancelAll()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
