// Command perple-worker is a fleet member for distributed campaigns: it
// pulls shard leases from a perple-serve dispatch campaign over HTTP,
// executes them with the same harness-backed runner the local scheduler
// uses, and streams batched results back in the negotiated wire codec
// (PWB1 binary against current servers, gzip-JSON against older ones;
// override with -wire). Because shard seeds are
// identity-derived and result merging is order-invariant, a fleet of
// workers produces byte-identical final results to a local -campaign
// run of the same spec — workers can join, crash, and be replaced
// mid-run without affecting the outcome.
//
// Lifecycle: the first SIGINT/SIGTERM drains gracefully (in-flight jobs
// finish and upload, unstarted leases are released back to the queue);
// a second signal aborts immediately, leaving held leases to expire and
// requeue server-side.
//
// Usage:
//
//	perple-serve -addr :8077 &
//	curl -X POST 'localhost:8077/campaigns?mode=dispatch' -d @spec.json   # → {"id":"c1",...}
//	perple-worker -server http://localhost:8077 -campaign c1
//	perple-worker -server http://host:8077 -campaign c1 -parallel 8 -name rack2-a
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perple/internal/campaign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "perple-worker: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	server := flag.String("server", "http://localhost:8077", "perple-serve base URL")
	campaignID := flag.String("campaign", "", "dispatch campaign id to work on (required)")
	name := flag.String("name", "", "worker name for lease accounting (default: hostname-pid)")
	parallel := flag.Int("parallel", 0, "concurrent jobs (default: GOMAXPROCS)")
	leaseBatch := flag.Int("lease-batch", 0, "jobs pulled per lease call (default: -parallel)")
	wire := flag.String("wire", "auto", "result-upload codec: auto (negotiate), json+gzip, or binary")
	heartbeat := flag.Duration("heartbeat", 0, "lease heartbeat period (default: a third of the server's lease TTL)")
	retries := flag.Int("retries", 5, "attempts per HTTP call before giving up")
	backoff := flag.Duration("backoff", 200*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
	breakerFailures := flag.Int("breaker-failures", campaign.DefaultBreakerThreshold, "consecutive HTTP failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", campaign.DefaultBreakerCooldown, "how long an open circuit holds requests off")
	recoveryWindow := flag.Duration("recovery-window", 0, "keep retrying transport errors and 5xx this long even past -retries, to ride out a server restart (0 disables)")
	flag.Parse()

	if *campaignID == "" {
		return errors.New("-campaign is required")
	}

	w := campaign.NewWorker(campaign.WorkerOptions{
		BaseURL:          *server,
		Campaign:         *campaignID,
		Name:             *name,
		Parallel:         *parallel,
		LeaseBatch:       *leaseBatch,
		Wire:             *wire,
		HeartbeatEvery:   *heartbeat,
		MaxAttempts:      *retries,
		BackoffBase:      *backoff,
		BreakerThreshold: *breakerFailures,
		BreakerCooldown:  *breakerCooldown,
		RecoveryWindow:   *recoveryWindow,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("draining: finishing in-flight jobs (signal again to abort)")
		w.Drain()
		<-sigs
		log.Printf("aborting: held leases will expire and requeue")
		cancel()
	}()

	start := time.Now()
	err := w.Run(ctx)
	log.Printf("worker done: %d jobs completed, %d failed, %s elapsed",
		w.JobsCompleted.Load(), w.JobsFailed.Load(), time.Since(start).Round(time.Millisecond))
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
