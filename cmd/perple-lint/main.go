// Command perple-lint statically vets litmus tests before any cycles are
// spent running them. For each test it parses (or takes from the built-in
// suite), it runs the axiomatic x86-TSO/SC checker of internal/axiom over
// the test's declared target outcome and reports:
//
//   - error: malformed tests — parse failures, conditions referencing
//     undefined registers or locations, duplicate register writes — with
//     the offending source line;
//   - error: unsatisfiable targets (a condition constrains a value outside
//     its static domain; no execution of any model can produce it);
//   - warn: forbidden targets (allowed by neither SC nor TSO — the test
//     can only ever serve as a false-positive detector);
//   - warn: SC-trivial targets (allowed under SC, so observing them says
//     nothing about store buffering);
//   - warn: vacuous targets (every TSO-consistent execution satisfies
//     them);
//   - note: tests beyond the exact-enumeration cutoff, which the checker
//     honestly refuses to classify.
//
// Usage:
//
//	perple-lint file.litmus dir/ ...      # lint files and directories
//	perple-lint -suite                    # lint the built-in suite
//	perple-lint -witness file.litmus      # show a witness execution
//	perple-lint -strict dir/              # warnings become fatal
//
// Exit status: 0 clean, 1 errors (or warnings under -strict), 2 usage.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"perple/internal/axiom"
	"perple/internal/litmus"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fl := flag.NewFlagSet("perple-lint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	suite := fl.Bool("suite", false, "lint the built-in perpetual suite instead of files")
	strict := fl.Bool("strict", false, "treat warnings as errors")
	witness := fl.Bool("witness", false, "print a witness execution for each allowed target")
	maxThreads := fl.Int("max-threads", axiom.DefaultMaxThreads, "exact-enumeration cutoff: threads")
	maxEvents := fl.Int("max-events", axiom.DefaultMaxEvents, "exact-enumeration cutoff: memory events")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	lim := axiom.Limits{MaxThreads: *maxThreads, MaxEvents: *maxEvents}

	l := &linter{out: stdout, lim: lim, witness: *witness}
	switch {
	case *suite:
		for _, e := range litmus.Suite() {
			l.lintTest(e.Test.Name, e.Test)
		}
		for _, t := range litmus.NonConvertible() {
			l.lintTest(t.Name, t)
		}
	case fl.NArg() == 0:
		fmt.Fprintln(stderr, "perple-lint: no inputs; pass .litmus files or directories, or -suite")
		return 2
	default:
		for _, arg := range fl.Args() {
			if err := l.lintPath(arg); err != nil {
				fmt.Fprintf(stderr, "perple-lint: %v\n", err)
				return 2
			}
		}
	}

	fmt.Fprintf(stdout, "%d tests: %d errors, %d warnings\n", l.tests, l.errors, l.warnings)
	if l.errors > 0 || (*strict && l.warnings > 0) {
		return 1
	}
	return 0
}

type linter struct {
	out     *os.File
	lim     axiom.Limits
	witness bool

	tests    int
	errors   int
	warnings int
}

func (l *linter) lintPath(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		l.lintFile(path)
		return nil
	}
	return filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".litmus") {
			l.lintFile(p)
		}
		return nil
	})
}

func (l *linter) lintFile(path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		l.tests++
		l.report("error", path, err.Error())
		return
	}
	t, err := litmus.Parse(string(src))
	if err != nil {
		l.tests++
		// Parse errors already carry "litmus: line N:" positions.
		l.report("error", path, err.Error())
		return
	}
	l.lintTest(path, t)
}

func (l *linter) lintTest(label string, t *litmus.Test) {
	l.tests++
	rep, err := axiom.AnalyzeWithLimits(t, l.lim)
	if err != nil {
		if _, ok := err.(*axiom.TooLargeError); ok {
			l.report("note", label, err.Error())
			return
		}
		l.report("error", label, err.Error())
		return
	}
	tgt := rep.Target
	switch {
	case tgt.Unsatisfiable:
		l.report("error", label, fmt.Sprintf("target %s is unsatisfiable: a condition constrains a value no execution can produce", t.Target))
	case tgt.Class == axiom.Forbidden:
		l.report("warn", label, fmt.Sprintf("target %s is forbidden under both SC and x86-TSO; the test can only detect conformance bugs", t.Target))
	case tgt.Class == axiom.SCAllowed:
		l.report("warn", label, fmt.Sprintf("target %s is SC-trivial: allowed under sequential consistency, so observing it says nothing about store buffering", t.Target))
	default:
		fmt.Fprintf(l.out, "%s: ok: target %s is %s (%d TSO states, %d SC)\n",
			label, t.Target, tgt.Class, len(rep.Results), len(rep.SCResults()))
	}
	if tgt.Vacuous {
		l.report("warn", label, fmt.Sprintf("target %s is vacuous: every TSO-consistent execution satisfies it", t.Target))
	}
	if l.witness && tgt.Witness != nil {
		fmt.Fprint(l.out, indent(tgt.Witness.Format()))
	}
}

func (l *linter) report(sev, label, msg string) {
	switch sev {
	case "error":
		l.errors++
	case "warn":
		l.warnings++
	}
	fmt.Fprintf(l.out, "%s: %s: %s\n", label, sev, msg)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
