package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes run with captured stdout/stderr.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	outFile, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errFile, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outFile, errFile)
	outB, _ := os.ReadFile(outFile.Name())
	errB, _ := os.ReadFile(errFile.Name())
	return code, string(outB), string(errB)
}

func writeLitmus(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sbSrc = `X86 sb
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MOV EAX,[y] | MOV EAX,[x] ;
exists (0:EAX=0 /\ 1:EAX=0)
`

func TestLintCleanTest(t *testing.T) {
	dir := t.TempDir()
	writeLitmus(t, dir, "sb.litmus", sbSrc)
	code, out, _ := runLint(t, dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "ok: target") || !strings.Contains(out, "tso-only") {
		t.Errorf("missing ok line:\n%s", out)
	}
}

func TestLintForbiddenTargetWarns(t *testing.T) {
	dir := t.TempDir()
	src := strings.Replace(sbSrc, "exists (0:EAX=0 /\\ 1:EAX=0)", "exists (0:EAX=1 /\\ 1:EAX=1)", 1)
	// (1,1) is SC-allowed, so use mp shape instead for a forbidden target.
	src = `X86 mp
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV EAX,[y] ;
 MOV [y],$1  | MOV EBX,[x] ;
exists (1:EAX=1 /\ 1:EBX=0)
`
	writeLitmus(t, dir, "mp.litmus", src)
	code, out, _ := runLint(t, dir)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (warnings are not fatal by default):\n%s", code, out)
	}
	if !strings.Contains(out, "warn:") || !strings.Contains(out, "forbidden") {
		t.Errorf("missing forbidden warning:\n%s", out)
	}
	if code, _, _ := runLint(t, "-strict", dir); code != 1 {
		t.Errorf("-strict exit %d, want 1", code)
	}
}

func TestLintMalformedCondition(t *testing.T) {
	dir := t.TempDir()
	src := strings.Replace(sbSrc, "0:EAX=0", "0:ECX=0", 1) // undefined register
	writeLitmus(t, dir, "bad.litmus", src)
	code, out, _ := runLint(t, dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "error:") || !strings.Contains(out, "line 6") {
		t.Errorf("error should carry the source line:\n%s", out)
	}
}

func TestLintUnsatisfiable(t *testing.T) {
	dir := t.TempDir()
	src := strings.Replace(sbSrc, "0:EAX=0", "0:EAX=7", 1) // 7 never stored to y
	writeLitmus(t, dir, "unsat.litmus", src)
	code, out, _ := runLint(t, dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "unsatisfiable") {
		t.Errorf("missing unsatisfiable error:\n%s", out)
	}
}

func TestLintWitness(t *testing.T) {
	dir := t.TempDir()
	writeLitmus(t, dir, "sb.litmus", sbSrc)
	_, out, _ := runLint(t, "-witness", dir)
	if !strings.Contains(out, "rf:") || !strings.Contains(out, "co:") {
		t.Errorf("missing witness rendering:\n%s", out)
	}
}

func TestLintSuite(t *testing.T) {
	code, out, _ := runLint(t, "-suite")
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "40 tests: 0 errors") {
		t.Errorf("suite lint summary unexpected:\n%s", out)
	}
}

func TestLintNoInputs(t *testing.T) {
	code, _, errOut := runLint(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "no inputs") {
		t.Errorf("missing usage error: %q", errOut)
	}
}
