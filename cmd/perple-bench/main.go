// perple-bench parses `go test -bench` output into a stable JSON summary
// so benchmark trajectories can be committed and diffed across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkSim|BenchmarkCount' -benchmem . |
//	    go run ./cmd/perple-bench -o BENCH_simcore.json
//
// Every benchmark line becomes one entry keyed by the benchmark name
// (with the -cpu suffix stripped): ns/op, B/op, allocs/op, any custom
// ReportMetric units, and a derived iters_per_sec (1e9/ns_per_op, the
// benchmark-op rate). Non-benchmark lines pass through untouched, so the
// tool can sit at the end of a pipe without hiding failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	N       int64   `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
	// Pointers distinguish a measured zero (the steady-state goal) from
	// a run without -benchmem, where the columns are absent entirely.
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	ItersPerSec float64            `json:"iters_per_sec"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the committed JSON document. The host block stamps the
// machine shape the numbers came from, so a diff across commits can
// tell a code regression from a different benchmark box.
type Summary struct {
	Note       string           `json:"note"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output JSON path")
	note := flag.String("note", "go test -bench snapshot; see scripts/bench.sh", "free-form provenance note")
	flag.Parse()

	sum := Summary{
		Note:       *note,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]Entry{},
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the pipe stays readable
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripCPUSuffix(m[1])
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{N: n}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				b := v
				e.BytesPerOp = &b
			case "allocs/op":
				a := v
				e.AllocsPerOp = &a
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
		if e.NsPerOp > 0 {
			e.ItersPerSec = 1e9 / e.NsPerOp
		}
		sum.Benchmarks[name] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench: reading stdin:", err)
		os.Exit(1)
	}
	if len(sum.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "perple-bench: no benchmark lines found on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perple-bench: wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
}

// stripCPUSuffix removes go test's -N GOMAXPROCS suffix so keys are
// stable across machines (Benchmark/sub-8 -> Benchmark/sub).
func stripCPUSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
