// perple-bench parses `go test -bench` output into a stable JSON summary
// so benchmark trajectories can be committed and diffed across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkSim|BenchmarkCount' -benchmem . |
//	    go run ./cmd/perple-bench -o BENCH_simcore.json
//
//	go test -run '^$' -bench '...' -benchtime=1x . |
//	    go run ./cmd/perple-bench -check BENCH_simcore.json -maxratio 3
//
// Every benchmark line becomes one entry: ns/op, B/op, allocs/op, any
// custom ReportMetric units, a derived iters_per_sec (1e9/ns_per_op, the
// benchmark-op rate), and the host shape the entry was measured under
// (num_cpu, gomaxprocs — the latter parsed from go test's -N name
// suffix, so a `-cpu 1,2,4,8` sweep records each point's true
// parallelism). When a benchmark appears under several GOMAXPROCS
// values, its entries are keyed "name/cpu=N" to keep the scaling curve's
// points distinct; a benchmark measured at a single value keeps its
// plain name, so ordinary runs produce the same keys as before.
//
// With -check, instead of writing a summary the tool compares each
// parsed entry's ns/op against the named baseline file and exits 1 if
// any benchmark regressed by more than -maxratio; benchmarks absent
// from the baseline are reported and skipped. Non-benchmark lines pass
// through untouched either way, so the tool can sit at the end of a
// pipe without hiding failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	N       int64   `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
	// Pointers distinguish a measured zero (the steady-state goal) from
	// a run without -benchmem, where the columns are absent entirely.
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	ItersPerSec float64            `json:"iters_per_sec"`
	NumCPU      int                `json:"num_cpu"`
	Gomaxprocs  int                `json:"gomaxprocs"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the committed JSON document. The host block stamps the
// machine shape the numbers came from, so a diff across commits can
// tell a code regression from a different benchmark box.
type Summary struct {
	Note       string           `json:"note"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parsed is one benchmark line before key resolution: the same base
// name may recur under different GOMAXPROCS in a -cpu sweep.
type parsed struct {
	base  string
	procs int
	e     Entry
}

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output JSON path")
	note := flag.String("note", "go test -bench snapshot; see scripts/bench.sh", "free-form provenance note")
	check := flag.String("check", "", "baseline JSON to compare ns/op against instead of writing a summary")
	maxRatio := flag.Float64("maxratio", 3.0, "with -check: fail when ns/op exceeds baseline by this factor")
	flag.Parse()

	lines, err := parseStdin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench: reading stdin:", err)
		os.Exit(1)
	}
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "perple-bench: no benchmark lines found on stdin")
		os.Exit(1)
	}
	benchmarks := resolveKeys(lines)

	if *check != "" {
		if !checkBaseline(*check, benchmarks, *maxRatio) {
			os.Exit(1)
		}
		return
	}

	sum := Summary{
		Note:       *note,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: benchmarks,
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "perple-bench: wrote %d benchmarks to %s\n", len(benchmarks), *out)
}

func parseStdin() ([]parsed, error) {
	var lines []parsed
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the pipe stays readable
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		base, procs := splitCPUSuffix(m[1])
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{N: n, NumCPU: runtime.NumCPU(), Gomaxprocs: procs}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				b := v
				e.BytesPerOp = &b
			case "allocs/op":
				a := v
				e.AllocsPerOp = &a
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
		if e.NsPerOp > 0 {
			e.ItersPerSec = 1e9 / e.NsPerOp
		}
		lines = append(lines, parsed{base: base, procs: procs, e: e})
	}
	return lines, sc.Err()
}

// resolveKeys assigns each parsed line its summary key: the plain base
// name, or base/cpu=N when the run measured the benchmark under more
// than one GOMAXPROCS (a -cpu sweep). Later lines overwrite earlier
// ones with the same key, matching go test's own last-wins reporting.
func resolveKeys(lines []parsed) map[string]Entry {
	procsSeen := map[string]map[int]bool{}
	for _, l := range lines {
		if procsSeen[l.base] == nil {
			procsSeen[l.base] = map[int]bool{}
		}
		procsSeen[l.base][l.procs] = true
	}
	benchmarks := make(map[string]Entry, len(lines))
	for _, l := range lines {
		key := l.base
		if len(procsSeen[l.base]) > 1 {
			key = fmt.Sprintf("%s/cpu=%d", l.base, l.procs)
		}
		benchmarks[key] = l.e
	}
	return benchmarks
}

// checkBaseline compares new entries against the committed baseline and
// reports every benchmark whose ns/op exceeds baseline by more than
// maxRatio. A new key is looked up exactly and then as key/cpu=N, so a
// plain single-GOMAXPROCS smoke run still matches a committed -cpu
// sweep's curve point. Returns false when any regression was found.
func checkBaseline(path string, benchmarks map[string]Entry, maxRatio float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perple-bench:", err)
		return false
	}
	var base Summary
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "perple-bench: parsing %s: %v\n", path, err)
		return false
	}
	ok, compared := true, 0
	for key, e := range benchmarks {
		ref, found := base.Benchmarks[key]
		if !found {
			ref, found = base.Benchmarks[fmt.Sprintf("%s/cpu=%d", key, e.Gomaxprocs)]
		}
		if !found || ref.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "perple-bench: %s: no baseline, skipped\n", key)
			continue
		}
		compared++
		ratio := e.NsPerOp / ref.NsPerOp
		if ratio > maxRatio {
			fmt.Fprintf(os.Stderr, "perple-bench: REGRESSION %s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx)\n",
				key, e.NsPerOp, ref.NsPerOp, ratio, maxRatio)
			ok = false
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "perple-bench: no benchmarks matched baseline %s\n", path)
		return false
	}
	if ok {
		fmt.Fprintf(os.Stderr, "perple-bench: %d benchmarks within %.2fx of %s\n", compared, maxRatio, path)
	}
	return ok
}

// splitCPUSuffix separates go test's -N GOMAXPROCS name suffix. go test
// omits the suffix when GOMAXPROCS is 1, so a bare name reports 1.
func splitCPUSuffix(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
