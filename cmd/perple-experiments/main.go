// Command perple-experiments regenerates the PerpLE paper's evaluation
// tables and figures (Section VII) on the simulated substrate.
//
// Usage:
//
//	perple-experiments [-exp all|table2|fig9|fig10|fig11|fig12|fig13|accuracy|overall]
//	                   [-n N] [-seed S] [-quick] [-exhcap2 N] [-exhcap3 N]
//
// Each experiment prints a plain-text report to stdout; see EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"perple/internal/experiments"
)

var experimentOrder = []string{"table2", "fig9", "fig10", "fig11", "fig12", "fig13", "accuracy", "overall", "faultinject"}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, or one of "+strings.Join(experimentOrder, ", "))
	n := flag.Int("n", 0, "iteration count override (0 = per-experiment paper default)")
	seed := flag.Int64("seed", 1, "simulator seed")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	cap2 := flag.Int("exhcap2", 0, "exhaustive-counter iteration cap for TL<=2 tests (0 = default, -1 = uncapped)")
	cap3 := flag.Int("exhcap3", 0, "exhaustive-counter iteration cap for TL=3 tests (0 = default, -1 = uncapped)")
	flag.Parse()

	opts := experiments.Options{
		N: *n, Seed: *seed, Quick: *quick,
		ExhaustiveCap2: *cap2, ExhaustiveCap3: *cap3,
	}

	runners := map[string]func(io.Writer, experiments.Options) error{
		"table2":      wrap(experiments.TableII),
		"fig9":        wrap(experiments.Fig9),
		"fig10":       wrap(experiments.Fig10),
		"fig11":       wrap(experiments.Fig11),
		"fig12":       wrap(experiments.Fig12),
		"fig13":       wrap(experiments.Fig13),
		"accuracy":    wrap(experiments.HeuristicAccuracy),
		"overall":     wrap(experiments.Overall),
		"faultinject": wrap(experiments.FaultInjection),
	}

	var names []string
	if *exp == "all" {
		names = experimentOrder
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "perple-experiments: unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
		names = []string{*exp}
	}

	for i, name := range names {
		if i > 0 {
			fmt.Println("\n" + strings.Repeat("=", 78) + "\n")
		}
		start := time.Now()
		if err := runners[name](os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "perple-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}

// wrap adapts a typed experiment driver to the common runner signature.
func wrap[T any](fn func(io.Writer, experiments.Options) (T, error)) func(io.Writer, experiments.Options) error {
	return func(w io.Writer, opts experiments.Options) error {
		_, err := fn(w, opts)
		return err
	}
}
