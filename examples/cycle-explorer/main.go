// Cycle explorer: generate litmus tests from relaxation cycles (the
// diy-style construction behind the paper's test corpus), classify each
// under SC / TSO / PSO, and watch how fences progressively forbid the
// weak behaviours — ending with a conversion narration straight out of
// the paper's Figure 6.
package main

import (
	"fmt"
	"log"

	"perple"
)

func main() {
	// A family of store-buffering cycles, from fully relaxed to fully
	// fenced. Each PodWR edge is a place the hardware may defer a store
	// past a later load; each fence removes one such place.
	family := []struct {
		label string
		edges []perple.EdgeSpec
	}{
		{"sb (both sides relaxed)", []perple.EdgeSpec{perple.PodWR, perple.Fre, perple.PodWR, perple.Fre}},
		{"sb one fence", []perple.EdgeSpec{perple.FencedWR, perple.Fre, perple.PodWR, perple.Fre}},
		{"sb both fences (amd5)", []perple.EdgeSpec{perple.FencedWR, perple.Fre, perple.FencedWR, perple.Fre}},
		{"mp (W->W relaxed only under PSO)", []perple.EdgeSpec{perple.PodWW, perple.Rfe, perple.PodRR, perple.Fre}},
		{"mp with fenced writes", []perple.EdgeSpec{perple.FencedWW, perple.Rfe, perple.PodRR, perple.Fre}},
		{"iriw (atomicity, never allowed)", []perple.EdgeSpec{perple.Rfe, perple.PodRR, perple.Fre, perple.Rfe, perple.PodRR, perple.Fre}},
	}

	fmt.Printf("%-36s %-10s %-10s %-10s\n", "cycle", "SC", "TSO", "PSO")
	for _, f := range family {
		test, err := perple.FromCycle(f.label, f.edges...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %-10s %-10s %-10s\n", f.label,
			verdict(perple.Allowed(test, test.Target, perple.SC)),
			verdict(perple.Allowed(test, test.Target, perple.TSO)),
			verdict(perple.Allowed(test, test.Target, perple.PSO)))
	}

	// Deep-dive one cycle: generate, show the test, convert, and narrate
	// the outcome conversion the way Figure 6 of the paper does.
	test, err := perple.FromCycle("explored-sb", perple.PodWR, perple.Fre, perple.PodWR, perple.Fre)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated test:\n%s\n", perple.FormatLitmus(test))

	pt, err := perple.Convert(test)
	if err != nil {
		log.Fatal(err)
	}
	_, ex, err := perple.Explain(pt, test.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conversion narration (paper Figure 6/8):")
	fmt.Print(ex.String())

	// And confirm empirically on the simulated TSO machine.
	counter, err := perple.NewTargetCounter(pt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := perple.RunPerpLE(pt, counter, 10000,
		perple.PerpLEOptions{Heuristic: true}, perple.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperpetual run, 10000 iterations: %d target occurrences\n", res.Heuristic.Counts[0])
}

func verdict(allowed bool) string {
	if allowed {
		return "allowed"
	}
	return "forbidden"
}
