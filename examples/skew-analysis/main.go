// Skew analysis: reproduce the Figure 12 measurement interactively. Run
// the perpetual sb test for 100k synchronization-free iterations, decode
// every loaded value back to the iteration that stored it (the arithmetic
// sequences make that possible), and plot the thread-skew distribution —
// the degree to which the two threads run ahead of or behind each other.
package main

import (
	"fmt"
	"log"

	"perple"
)

func main() {
	const iterations = 100000

	test, err := perple.SuiteTest("sb")
	if err != nil {
		log.Fatal(err)
	}
	pt, err := perple.Convert(test)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := perple.NewTargetCounter(pt)
	if err != nil {
		log.Fatal(err)
	}

	res, err := perple.RunPerpLE(pt, counter, iterations,
		perple.PerpLEOptions{Heuristic: true, KeepBufs: true}, perple.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Decode a few raw buffer entries to show the mechanism: thread 0's
	// n-th load of y returns k*m + a, identifying iteration m of thread 1.
	fmt.Println("decoding loaded values back to (storer, iteration):")
	for _, n := range []int{1000, 50000, 99000} {
		v := res.Bufs.Bufs[0][n]
		if store, m, ok := perple.DecodeValue(pt, "y", v); ok {
			fmt.Printf("  thread 0, iteration %6d read %8d => thread %d stored it at iteration %6d (skew %+d)\n",
				n, v, store.Ref.Thread, m, int64(n)-m)
		} else {
			fmt.Printf("  thread 0, iteration %6d read %8d => initial value, no skew sample\n", n, v)
		}
	}

	samples := perple.MeasureSkew(pt, res.Bufs)
	fmt.Printf("\n%d skew samples from %d iterations\n", len(samples), iterations)

	// Simple text histogram over coarse buckets.
	buckets := []int64{-1 << 62, -1000, -300, -100, -30, -10, 10, 30, 100, 300, 1000, 1 << 62}
	labels := []string{"< -1000", "-1000..-300", "-300..-100", "-100..-30", "-30..-10",
		"-10..10", "10..30", "30..100", "100..300", "300..1000", "> 1000"}
	counts := make([]int, len(labels))
	for _, s := range samples {
		for i := 0; i < len(labels); i++ {
			if s.Skew > buckets[i] && s.Skew <= buckets[i+1] {
				counts[i]++
				break
			}
		}
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Println("\nthread skew distribution (iterations apart):")
	for i, label := range labels {
		bar := counts[i] * 50 / max
		fmt.Printf("%12s | %-50s %d\n", label, stars(bar), counts[i])
	}
	fmt.Println("\nThe distribution is wide — threads drift far apart without per-iteration")
	fmt.Println("synchronization — yet densest near zero, exactly the Figure 12 shape.")
	fmt.Printf("PerpLE still counted %d target occurrences despite the drift.\n",
		res.Heuristic.Counts[0])
}

func stars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
