// Quickstart: run the store-buffering litmus test the PerpLE way and the
// litmus7 way, and compare how often and how fast each exposes the target
// outcome (the weak behaviour reg0=0 && reg1=0 that only a TSO machine
// with store buffers can produce).
package main

import (
	"fmt"
	"log"

	"perple"
)

func main() {
	const iterations = 10000

	// The sb test from the built-in Table II suite.
	test, err := perple.SuiteTest("sb")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("litmus test:")
	fmt.Println(perple.FormatLitmus(test))
	fmt.Printf("target outcome: %v\n", test.Target)
	fmt.Printf("  allowed under SC:  %v\n", perple.AllowedSC(test, test.Target))
	fmt.Printf("  allowed under TSO: %v\n\n", perple.AllowedTSO(test, test.Target))

	cfg := perple.DefaultConfig()

	// PerpLE: convert to a perpetual test, run synchronization-free, and
	// count target occurrences with the linear heuristic counter.
	pt, err := perple.Convert(test)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := perple.NewTargetCounter(pt)
	if err != nil {
		log.Fatal(err)
	}
	pres, err := perple.RunPerpLE(pt, counter, iterations,
		perple.PerpLEOptions{Heuristic: true}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// litmus7 baseline: per-iteration polling barrier (the default user
	// mode).
	lres, err := perple.RunLitmus7(test, iterations, perple.ModeUser, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}

	perpleTicks := pres.TotalTicksHeuristic()
	fmt.Printf("%d iterations of sb:\n\n", iterations)
	fmt.Printf("  PerpLE (heuristic counter): %6d target occurrences in %8d simulated ticks\n",
		pres.Heuristic.Counts[0], perpleTicks)
	fmt.Printf("  litmus7 (user mode):        %6d target occurrences in %8d simulated ticks\n",
		lres.TargetCount, lres.Ticks)

	speedup := float64(lres.Ticks) / float64(perpleTicks)
	perpleRate := float64(pres.Heuristic.Counts[0]) / float64(perpleTicks)
	litmusRate := float64(lres.TargetCount) / float64(lres.Ticks)
	fmt.Printf("\n  runtime speedup:                %8.2fx\n", speedup)
	if litmusRate > 0 {
		fmt.Printf("  detection-rate improvement:     %8.0fx\n", perpleRate/litmusRate)
	}
}
