// Custom test: the full Converter workflow on a user-supplied litmus7-
// format test — parse it, classify its target, convert it to a perpetual
// test, inspect the generated artifacts (perpetual assembly, counter
// sources, parameters), and run it under both harnesses.
package main

import (
	"fmt"
	"log"

	"perple"
)

// A litmus7-style source for a 3-thread write-to-read causality test with
// an extra stressing store, written the way diy/litmus7 users write them.
const source = `
X86 wrc+stress
"write-read causality with third-party store traffic"
{ x=0; y=0; z=0; }
 P0          | P1          | P2          ;
 MOV [x],$1  | MOV EAX,[x] | MOV EAX,[y] ;
 MOV [z],$1  | MOV [y],$1  | MOV EBX,[x] ;
exists (1:EAX=1 /\ 2:EAX=1 /\ 2:EBX=0)
`

func main() {
	test, err := perple.ParseLitmus(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d threads, %d load-performing\n", test.Name, test.T(), test.TL())
	fmt.Printf("target %v\n", test.Target)
	fmt.Printf("  SC allows:  %v\n", perple.AllowedSC(test, test.Target))
	fmt.Printf("  TSO allows: %v (wrc is forbidden: stores are transitively visible)\n\n",
		perple.AllowedTSO(test, test.Target))

	// Convert and show the Converter's artifacts, like the paper's tool
	// emits per-thread assembly and counter files.
	pt, err := perple.Convert(test)
	if err != nil {
		log.Fatal(err)
	}
	target, err := perple.ConvertOutcome(pt, test.Target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perpetual outcome condition:\n  %v\n\n", target)

	files := perple.GeneratedFiles(pt, []*perple.PerpetualOutcome{target})
	fmt.Printf("generated artifacts (%d files):\n", len(files))
	for name := range files {
		fmt.Printf("  %s (%d bytes)\n", name, len(files[name]))
	}
	fmt.Printf("\n%s\n", files["wrc_stress_t1.s"])

	// Run under both harnesses: nobody may observe the forbidden target.
	cfg := perple.DefaultConfig()
	const n = 20000

	counter := perple.NewCounter(pt, []*perple.PerpetualOutcome{target})
	pres, err := perple.RunPerpLE(pt, counter, n, perple.PerpLEOptions{Heuristic: true}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lres, err := perple.RunLitmus7(test, n, perple.ModeTimebase, nil, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d iterations:\n", n)
	fmt.Printf("  PerpLE heuristic:  %d target occurrences (expected 0)\n", pres.Heuristic.Counts[0])
	fmt.Printf("  litmus7 timebase:  %d target occurrences (expected 0)\n", lres.TargetCount)

	// The observable (allowed) outcomes still show up in litmus7's
	// histogram — the machine is weak, just not broken.
	fmt.Printf("  litmus7 observed %d distinct outcomes across the run\n", len(lres.Histogram))
}
