// Model explorer: use the herd-lite memory-model checker to compare what
// sequential consistency and x86-TSO allow, across the whole perpetual
// litmus suite and for a hand-built test — the workflow an architect uses
// to decide whether an observed outcome indicates a bug.
package main

import (
	"fmt"
	"log"

	"perple"
)

func main() {
	// 1. For every suite test: how many outcomes exist, how many each
	// model allows, and whether the target is TSO-only (the interesting
	// kind) or forbidden everywhere.
	fmt.Println("Suite outcome-space analysis (SC vs x86-TSO):")
	fmt.Printf("%-14s %8s %8s %8s  %s\n", "test", "space", "SC", "TSO", "target class")
	for _, e := range perple.Suite() {
		t := e.Test
		space := len(t.AllOutcomes())
		sc := len(perple.SCOutcomes(t))
		tso := len(perple.TSOOutcomes(t))
		class := classify(t)
		fmt.Printf("%-14s %8d %8d %8d  %s\n", t.Name, space, sc, tso, class)
	}

	// 2. A hand-built test through the same pipeline: message passing
	// with a fence only on the writer side. Is the mp pattern still
	// forbidden? (Yes: TSO preserves load-load order regardless.)
	test := &perple.Test{
		Name: "mp-writer-fence",
		Doc:  "message passing, fence between the writes only",
		Threads: []perple.Thread{
			{Instrs: []perple.Instr{
				perple.Store("data", 1),
				perple.Fence(),
				perple.Store("flag", 1),
			}},
			{Instrs: []perple.Instr{
				perple.Load(0, "flag"),
				perple.Load(1, "data"),
			}},
		},
		Target: perple.Outcome{Conds: []perple.Cond{
			{Thread: 1, Reg: 0, Value: 1}, // saw the flag...
			{Thread: 1, Reg: 1, Value: 0}, // ...but not the data
		}},
	}
	if err := test.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhand-built test %q:\n%s\n", test.Name, perple.FormatLitmus(test))
	fmt.Printf("target %v: SC %v, TSO %v\n", test.Target,
		perple.AllowedSC(test, test.Target), perple.AllowedTSO(test, test.Target))

	// 3. Empirical confirmation: run it perpetually; the counters must
	// report zero, because the simulated machine implements TSO.
	pt, err := perple.Convert(test)
	if err != nil {
		log.Fatal(err)
	}
	counter, err := perple.NewTargetCounter(pt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := perple.RunPerpLE(pt, counter, 20000,
		perple.PerpLEOptions{Heuristic: true}, perple.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperpetual run, 20000 iterations: %d target occurrences (expected 0)\n",
		res.Heuristic.Counts[0])
}

func classify(t *perple.Test) string {
	sc := perple.AllowedSC(t, t.Target)
	tso := perple.AllowedTSO(t, t.Target)
	switch {
	case tso && !sc:
		return "TSO-only (demonstrates store buffering)"
	case tso && sc:
		return "allowed everywhere"
	default:
		return "forbidden (a sighting means a bug)"
	}
}
