package perple

import (
	"strings"
	"testing"
)

// TestPublicAPIPipeline walks the full public surface the README
// advertises: suite access, parsing/printing, model classification,
// conversion, explanation, code generation, both harnesses, skew
// measurement, value decoding, and the fence/cycle/relabel tools.
func TestPublicAPIPipeline(t *testing.T) {
	if len(Suite()) != 34 || len(AllowedSuite()) != 12 || len(ForbiddenSuite()) != 22 {
		t.Fatal("suite accessors wrong")
	}
	if len(SuiteNames()) != 34 {
		t.Fatal("SuiteNames wrong")
	}
	if len(NonConvertible()) == 0 {
		t.Fatal("NonConvertible empty")
	}

	test, err := SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through the litmus7 text format.
	reparsed, err := ParseLitmus(FormatLitmus(test))
	if err != nil {
		t.Fatal(err)
	}
	if !reparsed.Target.Equal(test.Target) {
		t.Error("format/parse round trip lost the target")
	}

	// Model classification.
	if AllowedSC(test, test.Target) {
		t.Error("sb target should be SC-forbidden")
	}
	if !AllowedTSO(test, test.Target) {
		t.Error("sb target should be TSO-allowed")
	}
	if !Allowed(test, test.Target, PSO) {
		t.Error("sb target should be PSO-allowed")
	}
	if len(SCOutcomes(test)) != 3 || len(TSOOutcomes(test)) != 4 {
		t.Error("outcome sets wrong")
	}

	// Conversion, explanation, codegen.
	pt, err := Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	po, ex, err := Explain(pt, test.Target)
	if err != nil {
		t.Fatal(err)
	}
	if po.Unsatisfiable || !strings.Contains(ex.String(), "happens-before") {
		t.Error("explanation wrong")
	}
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	files := GeneratedFiles(pt, pos)
	if _, ok := files["sb_count.go"]; !ok {
		t.Error("generated files missing counter source")
	}

	// Harnesses.
	cfg := DefaultConfig()
	counter, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := RunPerpLE(pt, counter, 1500,
		PerpLEOptions{Exhaustive: true, Heuristic: true, KeepBufs: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Exhaustive.Counts[0] == 0 || pres.Heuristic.Counts[0] == 0 {
		t.Error("PerpLE found no sb targets")
	}
	if pres.Heuristic.Counts[0] > pres.Exhaustive.Counts[0] {
		t.Error("heuristic exceeded exhaustive")
	}
	all := NewCounter(pt, pos)
	if got, err := all.CountHeuristic(pres.Bufs); err != nil || got.Total() == 0 {
		t.Errorf("multi-outcome counter failed: %v %v", got, err)
	}

	lres, err := RunLitmus7(test, 1500, ModeTimebase, test.AllOutcomes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lres.TargetCount == 0 {
		t.Error("litmus7 timebase found no sb targets")
	}
	if !strings.Contains(FormatLitmus7Report(lres), "Observation sb") {
		t.Error("report wrong")
	}

	// Skew + decoding.
	samples := MeasureSkew(pt, pres.Bufs)
	if len(samples) == 0 {
		t.Error("no skew samples")
	}
	if _, _, ok := DecodeValue(pt, "x", pres.Bufs.Bufs[1][0]); pres.Bufs.Bufs[1][0] > 0 && !ok {
		t.Error("decode failed")
	}

	// Transformations and generators.
	fenced := WithFences(test)
	if AllowedTSO(fenced, fenced.Target) {
		t.Error("fully fenced sb target should be TSO-forbidden")
	}
	relabeled, err := RelabelLocations(test, map[Loc]Loc{"x": "data"})
	if err != nil || relabeled.Locs()[0] != "data" {
		t.Errorf("relabel failed: %v", err)
	}
	cyc, err := FromCycle("api-sb", PodWR, Fre, PodWR, Fre)
	if err != nil {
		t.Fatal(err)
	}
	if !AllowedTSO(cyc, cyc.Target) || AllowedSC(cyc, cyc.Target) {
		t.Error("cycle classification wrong")
	}
	edges, err := ParseCycle("PodWW Rfe PodRR Fre")
	if err != nil || len(edges) != 4 {
		t.Fatal("ParseCycle failed")
	}

	// Presets.
	if _, err := Preset("pso"); err != nil {
		t.Error(err)
	}
	if len(Presets()) < 5 {
		t.Error("presets missing")
	}

	// Hand-built test via constructors.
	custom := &Test{
		Name: "api-custom",
		Threads: []Thread{
			{Instrs: []Instr{Store("a", 1), Fence(), Load(0, "b")}},
			{Instrs: []Instr{Store("b", 1), Fence(), Load(0, "a")}},
		},
		Target: Outcome{Conds: []Cond{{Thread: 0, Reg: 0, Value: 0}, {Thread: 1, Reg: 0, Value: 0}}},
	}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	if AllowedTSO(custom, custom.Target) {
		t.Error("fenced sb should be TSO-forbidden")
	}
}

// TestPublicAPITrace exercises the trace plumbing through the facade.
func TestPublicAPITrace(t *testing.T) {
	test, err := SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TraceSize = 256
	res, err := RunPerpLE(pt, counter, 20, PerpLEOptions{Heuristic: true}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Events()) == 0 {
		t.Error("no trace events through the facade")
	}
}
